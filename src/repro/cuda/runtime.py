"""The high-level (runtime) accelerator API.

Mirrors the CUDA runtime API the paper's baseline applications use
directly: ``cudaMalloc``, ``cudaFree``, ``cudaMemcpy`` (+Async),
``cudaMemset``, kernel launch and ``cudaThreadSynchronize``.  Two things
distinguish it from the driver layer:

* **lazy initialisation** — the first runtime call pays a context-creation
  cost, which is why the paper uses the *runtime* abstraction layer when
  comparing GMAC against CUDA (both pay it) and the *driver* layer when
  extracting break-downs (Section 5);
* **accounting** — every call charges its Figure 10 category
  (cudaMalloc / cudaFree / cudaLaunch, copies under Copy, waits under GPU).
"""

from repro.sim.tracing import Category
from repro.cuda.driver import DriverContext


class CudaRuntime:
    """cudaMalloc/cudaMemcpy/cudaLaunch-style API with accounting."""

    #: One-time context creation charged at the first runtime call.  The
    #: real CUDA 2.2 cost is tens of milliseconds; it is scaled down with
    #: the workloads so that, as in the paper, it stays small relative to
    #: application run time (the driver layer discards it entirely).
    INIT_COST_S = 1.0e-3

    #: CPU-side cost of a runtime API call on top of the driver call.
    CALL_OVERHEAD_S = 1.0e-6

    def __init__(self, machine, process, gpu=None, init_cost_s=None):
        self.machine = machine
        self.process = process
        self.accounting = machine.accounting
        self.driver = DriverContext(machine, process, gpu=gpu)
        self.init_cost_s = self.INIT_COST_S if init_cost_s is None else init_cost_s
        self._initialized = False
        self._pending_kernels = []

    def _ensure_initialized(self):
        """Pay the lazy context-creation cost once."""
        if not self._initialized:
            self._initialized = True
            self.machine.clock.advance(self.init_cost_s)
            self.accounting.charge(
                Category.CUDA_MALLOC, self.init_cost_s, label="cuda-init"
            )

    def _call_overhead(self):
        self.machine.clock.advance(self.CALL_OVERHEAD_S)

    # -- memory ------------------------------------------------------------------

    def cuda_malloc(self, size):
        self._ensure_initialized()
        with self.accounting.measure(Category.CUDA_MALLOC, label="cudaMalloc"):
            self._call_overhead()
            return self.driver.mem_alloc(size)

    def cuda_free(self, address):
        self._ensure_initialized()
        with self.accounting.measure(Category.CUDA_FREE, label="cudaFree"):
            self._call_overhead()
            self.driver.mem_free(address)

    # -- transfers ---------------------------------------------------------------

    def cuda_memcpy_h2d(self, device, host, size):
        self._ensure_initialized()
        with self.accounting.measure(Category.COPY, label="cudaMemcpy H2D"):
            self._call_overhead()
            return self.driver.memcpy_h2d(device, int(host), size, sync=True)

    def cuda_memcpy_d2h(self, host, device, size):
        self._ensure_initialized()
        with self.accounting.measure(Category.COPY, label="cudaMemcpy D2H"):
            self._call_overhead()
            return self.driver.memcpy_d2h(int(host), device, size, sync=True)

    def cuda_memcpy_h2d_async(self, device, host, size, stream):
        """Asynchronous copy: the CPU pays only the issue cost."""
        self._ensure_initialized()
        self._call_overhead()
        return self.driver.memcpy_h2d(
            device, int(host), size, stream=stream, sync=False
        )

    def cuda_memcpy_d2h_async(self, host, device, size, stream):
        self._ensure_initialized()
        self._call_overhead()
        return self.driver.memcpy_d2h(
            int(host), device, size, stream=stream, sync=False
        )

    def cuda_memset(self, device, value, size):
        self._ensure_initialized()
        with self.accounting.measure(Category.COPY, label="cudaMemset"):
            self._call_overhead()
            return self.driver.memset_d8(device, value, size)

    # -- execution ----------------------------------------------------------------

    def launch(self, kernel, stream=None, earliest=None, **args):
        """Launch a kernel; returns its Completion (asynchronous)."""
        self._ensure_initialized()
        with self.accounting.measure(Category.CUDA_LAUNCH, label=kernel.name):
            self._call_overhead()
            completion = self.driver.launch(
                kernel, args, stream=stream, earliest=earliest
            )
        self._pending_kernels.append(completion)
        return completion

    def cuda_thread_synchronize(self):
        """Wait for all outstanding work, charging the wait to GPU time.

        This observes virtual time only (kernel completions): deferred
        kernel *numerics* stay queued across it, and are replayed by the
        first device-byte access — typically the ``cudaMemcpy`` D2H the
        application issues next.
        """
        self._ensure_initialized()
        self._call_overhead()
        wait_start = self.machine.clock.now
        self.driver.synchronize()
        waited = self.machine.clock.now - wait_start
        self.accounting.charge(Category.GPU, waited, label="sync-wait")
        self._pending_kernels.clear()
        return waited

    @property
    def pending_numerics(self):
        """Launches whose deferred numerics have not yet executed."""
        return self.driver.gpu.pending_numerics
