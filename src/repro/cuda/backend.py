"""Optional compiled kernel-numerics backend.

The simulated kernels compute their numerics on the host (device bytes in,
device bytes out, zero virtual time).  By default they run pure-numpy; the
hottest ones also ship a compiled alternative selected with::

    REPRO_KERNEL_BACKEND=numba

Numba is an optional dependency (the ``[compiled]`` extra): requesting the
numba backend on an interpreter without it falls back to numpy silently,
so one CI matrix leg can set the variable unconditionally.  Backend choice
is part of every :class:`~repro.experiments.spec.RunSpec` (and therefore
of the result-cache key), so cached numpy results are never replayed as
numba ones or vice versa.

Kernels register a *builder* per compiled routine; the builder runs at
most once per process, on first use, receiving the ``numba`` module and
returning the jitted callable.  :func:`compiled` returns ``None`` whenever
the numpy backend is active, which callers treat as "take the numpy path".
"""

import os

#: Resolved backend name ("numpy"/"numba"), or None before first use.
_active = None

#: The imported numba module when the numba backend is active.
_numba = None

#: Built compiled routines, keyed by registration name.
_built = {}


def requested_backend():
    """The backend named by ``REPRO_KERNEL_BACKEND`` (default numpy)."""
    name = os.environ.get("REPRO_KERNEL_BACKEND", "numpy").strip().lower()
    if name not in ("numpy", "numba"):
        raise KeyError(
            f"unknown REPRO_KERNEL_BACKEND {name!r}; "
            "pick 'numpy' or 'numba'"
        )
    return name


def active_backend():
    """The backend actually in effect: the requested one, downgraded to
    numpy when numba is not importable (the graceful-skip path)."""
    global _active, _numba
    if _active is None:
        _active = requested_backend()
        if _active == "numba":
            try:
                import numba
            except ImportError:
                _active = "numpy"
            else:
                _numba = numba
    return _active


def compiled(name, builder):
    """The compiled routine ``name``, or None when numpy is active.

    ``builder(numba)`` is invoked once per process on first use and must
    return the jitted callable; a builder that fails to compile demotes
    just that routine to numpy (recorded, not retried).
    """
    if active_backend() != "numba":
        return None
    routine = _built.get(name, _built)
    if routine is _built:
        try:
            routine = builder(_numba)
        except Exception:
            routine = None
        _built[name] = routine
    return routine


def reset():
    """Forget the resolved backend and built routines (tests flip the
    environment between cases; production never calls this)."""
    global _active, _numba
    _active = None
    _numba = None
    _built.clear()
