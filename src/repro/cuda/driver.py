"""The low-level (driver) accelerator API.

Mirrors the CUDA driver API surface GMAC's *CUDA Driver Layer* uses:
device-memory allocation, synchronous and asynchronous copies in both
directions, 8-bit memset, stream-ordered kernel launches, and context
synchronization.  Data moves eagerly (byte-accurate snapshots at issue
time); timing occupies the link and GPU resources, so asynchronous copies
genuinely overlap CPU work on the virtual clock.

Host-side buffers are accessed with privileged ``peek``/``poke`` — DMA
engines ignore page protections, which is exactly why GMAC can keep shared
pages protected while transferring them.
"""

from repro.util.errors import (
    AllocationError,
    CudaError,
    CudaOutOfMemoryError,
    DeviceLostError,
    InvalidDeviceAddressError,
    LaunchError,
    TransferError,
)
from repro.hw.interconnect import Direction
from repro.hw import memory as device_memory


class Event:
    """A CUDA-style timing event.

    Recording an event into a stream captures the virtual time at which
    the stream's work issued so far will have completed; applications use
    pairs of events to time GPU-side phases without blocking the CPU
    (the standard cudaEventRecord / cudaEventElapsedTime pattern).
    """

    def __init__(self, name="event"):
        self.name = name
        self.timestamp = None

    @property
    def recorded(self):
        return self.timestamp is not None

    def record(self, clock, stream=None):
        """Capture the completion time of work issued so far."""
        if stream is not None and stream.earliest_next is not None:
            self.timestamp = stream.earliest_next
        else:
            self.timestamp = clock.now
        return self.timestamp

    def synchronize(self, clock):
        """Block the CPU until the event's captured point in time."""
        if not self.recorded:
            raise CudaError(f"event {self.name!r} was never recorded")
        clock.advance_to(self.timestamp)
        return clock.now

    def elapsed_since(self, earlier):
        """Milliseconds between two recorded events (cudaEventElapsedTime)."""
        if not self.recorded or not earlier.recorded:
            raise CudaError("both events must be recorded")
        return (self.timestamp - earlier.timestamp) * 1e3


class Stream:
    """An in-order work queue: each operation starts after the previous."""

    def __init__(self, name="stream"):
        self.name = name
        self.last = None  # most recent Completion in this stream

    def chain(self, completion):
        self.last = completion
        return completion

    @property
    def earliest_next(self):
        return self.last.finish if self.last is not None else None

    def synchronize(self, clock):
        if self.last is not None:
            clock.advance_to(self.last.finish)
        return clock.now


class DriverContext:
    """One context on one GPU of one machine."""

    #: CPU-side cost of trapping into the driver for any call.
    CALL_OVERHEAD_S = 4.0e-6

    def __init__(self, machine, process, gpu=None):
        self.machine = machine
        self.process = process
        self.gpu = gpu if gpu is not None else machine.gpu
        #: This device's index on the machine and the link carrying its DMA
        #: traffic (``links[0]`` on legacy single-link machines).
        self.device_index = machine.device_index(self.gpu)
        self.link = machine.link_for(self.gpu)
        self.clock = machine.clock
        self.default_stream = Stream("default")
        self.allocations = {}
        #: False after a device-lost event: the context is dead and every
        #: operation on it fails until :meth:`revive` resets the device.
        self.alive = True

    def _driver_call(self):
        self.clock.advance(self.CALL_OVERHEAD_S)

    # -- fault injection and context liveness -------------------------------------

    @property
    def faults(self):
        """The machine's installed fault plan (None = no injection)."""
        return self.machine.faults

    def _check_alive(self):
        if not self.alive:
            raise DeviceLostError(
                f"operation on dead context: {self.gpu.spec.name} was lost",
                timestamp=self.clock.now, resource=self.gpu.spec.name,
                device=self.device_index,
            )

    def _maybe_fail_transfer(self, direction, size):
        """Consult the fault plan before a DMA; transient faults occupy the
        link for the attempt's full duration before surfacing (the engine
        reports the error at completion time)."""
        plan = self.faults
        if plan is None or not plan.enabled or self.machine.integrated:
            return
        if plan.transfer_fault(d2h=direction is Direction.D2H) is None:
            return
        completion = self.link.faulted_transfer(size, direction)
        completion.wait()
        raise TransferError(
            f"DMA of {size} bytes {direction} failed (transient)",
            direction=direction, size=size,
            timestamp=self.clock.now,
            resource=f"{self.link.spec.name} {direction}",
        )

    def _maybe_fail_malloc(self, size):
        plan = self.faults
        if plan is None or not plan.enabled:
            return
        if plan.malloc_fault():
            raise CudaOutOfMemoryError(
                f"cuMemAlloc of {size} bytes failed (injected OOM)",
                size=size, timestamp=self.clock.now,
                resource=self.gpu.spec.name, transient=True,
            )

    def _maybe_fail_launch(self, kernel):
        plan = self.faults
        if plan is None or not plan.enabled:
            return
        outcome = plan.launch_fault()
        if outcome is None:
            return
        from repro.faults.plan import DEVICE_LOST

        if outcome == DEVICE_LOST:
            self.alive = False
            raise DeviceLostError(
                f"device lost launching {kernel.name!r}",
                timestamp=self.clock.now, resource=self.gpu.spec.name,
                device=self.device_index,
            )
        raise LaunchError(
            f"launch of {kernel.name!r} rejected by the driver (transient)",
            kernel=kernel.name, timestamp=self.clock.now,
            resource=self.gpu.spec.name,
        )

    def revive(self):
        """Driver-level device reset after a device-lost event.

        The device comes back empty: memory contents and allocations are
        gone and must be replayed through :meth:`restore_allocation`.  Only
        meaningful for recovery code — see
        :meth:`repro.core.recovery.RecoveryPolicy.recover_device_loss`.
        """
        self.gpu.reset()
        self.allocations = {}
        self.default_stream = Stream("default")
        self.alive = True

    def restore_allocation(self, address, size):
        """Replay one allocation at its pre-reset address.

        Placement allocation is always possible here (unlike
        :meth:`mem_alloc_at`, which needs accelerator virtual memory):
        the device heap is empty after a reset, so the old first-fit
        layout is free by construction.
        """
        self._driver_call()
        self._check_alive()
        result = self.gpu.memory.alloc_at(address, size)
        self.allocations[result] = size
        return result

    # -- memory management --------------------------------------------------------

    def mem_alloc(self, size):
        """cuMemAlloc: returns a device address."""
        self._driver_call()
        self._check_alive()
        self._maybe_fail_malloc(size)
        try:
            address = self.gpu.memory.alloc(size)
        except AllocationError as exc:
            raise CudaOutOfMemoryError(
                f"cuMemAlloc of {size} bytes failed: {exc}",
                size=size, timestamp=self.clock.now,
                resource=self.gpu.spec.name,
            ) from exc
        self.allocations[address] = size
        return address

    def mem_alloc_at(self, address, size):
        """cuMemAlloc at a chosen virtual address (VM accelerators only)."""
        self._driver_call()
        self._check_alive()
        if not self.gpu.spec.virtual_memory:
            raise CudaError(
                f"{self.gpu.spec.name} has no virtual memory; "
                "placement allocation is unsupported"
            )
        result = self.gpu.memory.alloc_at(address, size)
        self.allocations[result] = size
        return result

    def mem_free(self, address):
        """cuMemFree.

        Unknown addresses — including a second free of the same address —
        raise :class:`InvalidDeviceAddressError`, never ``KeyError``.
        """
        self._driver_call()
        if address not in self.allocations:
            raise InvalidDeviceAddressError(
                f"cuMemFree of unknown or already-freed device address "
                f"{address:#x}",
                address=address, timestamp=self.clock.now,
                resource=self.gpu.spec.name,
            )
        del self.allocations[address]
        self.gpu.memory.free(address)

    # -- data transfer --------------------------------------------------------------

    def memcpy_h2d(self, device, host, size, stream=None, sync=True):
        """Copy host -> device.  Returns the transfer Completion.

        An injected PCIe fault fires *before* any bytes (or ledger
        metadata) change: deferred transfers fault at charge time, exactly
        like their eager equivalents.  The byte movement itself goes
        through the ledger entry point — in deferred mode only the
        host-dirty / unsynced delta is copied; the link is charged for the
        full ``size`` either way (DMA ignores host page protections).
        """
        self._driver_call()
        self._check_alive()
        self._maybe_fail_transfer(Direction.H2D, size)
        mapping = self.process.address_space.resolve(host, size)
        copied = device_memory.copy_h2d(
            self.gpu.memory, device, mapping, host, size,
            deferred=self.gpu.defer_transfers,
        )
        completion = self._schedule_transfer(
            size, Direction.H2D, stream, deferred=size - copied
        )
        if sync:
            completion.wait()
        return completion

    def memcpy_d2h(self, host, device, size, stream=None, sync=True):
        """Copy device -> host.  Returns the transfer Completion.

        In deferred mode this records a versioned ledger extent against the
        destination mapping instead of copying; the bytes materialize when
        the host range is observed.  Faults fire at charge time, the link
        is charged for the full ``size``, and the device-side observation
        barrier (numerics materialization) runs at record time — the event
        stream is identical to an eager copy's.
        """
        self._driver_call()
        self._check_alive()
        self._maybe_fail_transfer(Direction.D2H, size)
        mapping = self.process.address_space.resolve(host, size)
        copied = device_memory.copy_d2h(
            self.gpu.memory, device, mapping, host, size,
            deferred=self.gpu.defer_transfers,
        )
        completion = self._schedule_transfer(
            size, Direction.D2H, stream, deferred=size - copied
        )
        if sync:
            completion.wait()
        return completion

    def memcpy_d2d(self, destination, source, size):
        """Copy device -> device over the GPU's own memory (fast path)."""
        self._driver_call()
        self._check_alive()
        data = self.gpu.memory.read(source, size)
        self.gpu.memory.write(destination, data)
        duration = 2 * size / self.gpu.spec.memory_bandwidth_bytes_per_s
        return self.gpu.engine.execute(duration, label="d2d")

    def memset_d8(self, device, value, size):
        """8-bit device memset, timed against device memory bandwidth."""
        self._driver_call()
        self._check_alive()
        self.gpu.memory.fill(device, value, size)
        duration = size / self.gpu.spec.memory_bandwidth_bytes_per_s
        return self.gpu.engine.execute(duration, label="memset")

    def _schedule_transfer(self, size, direction, stream, deferred=0):
        if self.machine.integrated:
            # CPU and accelerator share physical memory: the "transfer" is
            # a no-op aside from the driver call (Section 3.1's low-cost
            # system).  Bytes are still counted as zero moved on the link.
            return self.link.resource(direction).schedule(0.0, label="no-op")
        earliest = stream.earliest_next if stream is not None else None
        completion = self.link.transfer(
            size, direction, label=str(direction), earliest=earliest,
            deferred=deferred,
        )
        if stream is not None:
            stream.chain(completion)
        return completion

    # -- execution -------------------------------------------------------------------

    def launch(self, kernel, args, stream=None, earliest=None):
        """Launch a kernel asynchronously; returns its Completion.

        ``earliest`` lets callers thread data dependencies (e.g. "after all
        pending host-to-device evictions"), on top of stream ordering.

        Launching on a dead context raises :class:`DeviceLostError`; an
        injected transient rejection raises :class:`LaunchError` *before*
        the kernel has any effect on device memory — in particular before
        the numerics are enqueued, so a rejected launch never reaches the
        deferred queue.
        """
        self._driver_call()
        self._check_alive()
        self._maybe_fail_launch(kernel)
        duration = kernel.duration_on(self.gpu, args)
        self.gpu.enqueue_numerics(kernel, args)
        dependency = earliest
        if stream is not None and stream.earliest_next is not None:
            dependency = max(
                stream.earliest_next,
                earliest if earliest is not None else 0.0,
            )
        completion = self.gpu.launch(
            duration, label=kernel.name, earliest=dependency
        )
        if stream is not None:
            stream.chain(completion)
        return completion

    def synchronize(self):
        """Wait for everything: kernels and transfers."""
        self._driver_call()
        self.gpu.synchronize()
        self.link.drain()
        return self.clock.now
