"""Kernel objects: real numerics plus a virtual-time cost model.

A kernel is a Python function that computes over numpy views of *device*
memory (the asymmetry: kernels never see host mappings) together with a
cost function mapping the launch arguments to abstract work units and bytes
touched.  The GPU spec converts those into execution seconds.

Timing is charged at launch (so launches stay asynchronous on the virtual
clock), but the numerics are *deferred*: the GPU queues them and replays
the queue the first time anything observes device-memory bytes (see
``hw/gpu.py``).  A kernel may provide ``batched_fn`` to evaluate a run of
consecutive queued launches in one vectorized pass; ``batch_by`` names the
scalar arguments allowed to vary inside such a run.
"""

from repro.util.errors import CudaError


class Kernel:
    """A device kernel: ``fn(gpu, **args)`` + ``cost(**args)``.

    ``cost`` must return ``(work_units, bytes_touched)``; either may be
    zero.  ``writes`` optionally names the pointer arguments the kernel
    writes — the hook Section 4.3 suggests for compiler/programmer
    annotations that avoid needless transfers (used by the annotation
    ablation, not by the core protocols).

    ``batched_fn(gpu, args_list)`` optionally evaluates a run of
    consecutive deferred launches in one pass; it must produce device
    bytes identical to calling ``fn`` once per element in queue order.
    ``batch_by`` names the arguments permitted to differ between launches
    of one batch (everything else must compare equal).
    """

    def __init__(self, name, fn, cost, writes=None, batched_fn=None,
                 batch_by=()):
        if not callable(fn) or not callable(cost):
            raise CudaError(f"kernel {name!r} needs callable fn and cost")
        if batched_fn is not None and not callable(batched_fn):
            raise CudaError(f"kernel {name!r} batched_fn must be callable")
        if batch_by and batched_fn is None:
            raise CudaError(
                f"kernel {name!r} declares batch_by without a batched_fn"
            )
        self.name = name
        self.fn = fn
        self.cost = cost
        self.writes = frozenset(writes or ())
        self.batched_fn = batched_fn
        self.batch_by = frozenset(batch_by)

    def duration_on(self, gpu, args):
        """Execution seconds of this kernel on ``gpu`` for ``args``."""
        work_units, bytes_touched = self.cost(**args)
        if work_units < 0 or bytes_touched < 0:
            raise CudaError(
                f"kernel {self.name!r} cost model returned negative values"
            )
        return gpu.kernel_seconds(work_units, bytes_touched)

    def execute(self, gpu, args):
        """Run the numerics against device memory (no timing)."""
        self.fn(gpu, **args)

    def batch_compatible(self, args_a, args_b):
        """True when two queued launches may share one batched pass."""
        if self.batched_fn is None:
            return False
        if args_a.keys() != args_b.keys():
            return False
        return all(
            args_a[key] == args_b[key]
            for key in args_a
            if key not in self.batch_by
        )

    def execute_batch(self, gpu, args_list):
        """Run the numerics of a run of queued launches in one pass."""
        self.batched_fn(gpu, args_list)

    def __repr__(self):
        return f"Kernel({self.name!r})"
