"""Kernel objects: real numerics plus a virtual-time cost model.

A kernel is a Python function that computes over numpy views of *device*
memory (the asymmetry: kernels never see host mappings) together with a
cost function mapping the launch arguments to abstract work units and bytes
touched.  The GPU spec converts those into execution seconds.

Numerics execute eagerly at launch so results are exact; timing is
scheduled on the GPU's execution resource so launches remain asynchronous.
"""

from repro.util.errors import CudaError


class Kernel:
    """A device kernel: ``fn(gpu, **args)`` + ``cost(**args)``.

    ``cost`` must return ``(work_units, bytes_touched)``; either may be
    zero.  ``writes`` optionally names the pointer arguments the kernel
    writes — the hook Section 4.3 suggests for compiler/programmer
    annotations that avoid needless transfers (used by the annotation
    ablation, not by the core protocols).
    """

    def __init__(self, name, fn, cost, writes=None):
        if not callable(fn) or not callable(cost):
            raise CudaError(f"kernel {name!r} needs callable fn and cost")
        self.name = name
        self.fn = fn
        self.cost = cost
        self.writes = frozenset(writes or ())

    def duration_on(self, gpu, args):
        """Execution seconds of this kernel on ``gpu`` for ``args``."""
        work_units, bytes_touched = self.cost(**args)
        if work_units < 0 or bytes_touched < 0:
            raise CudaError(
                f"kernel {self.name!r} cost model returned negative values"
            )
        return gpu.kernel_seconds(work_units, bytes_touched)

    def execute(self, gpu, args):
        """Run the numerics against device memory (no timing)."""
        self.fn(gpu, **args)

    def __repr__(self):
        return f"Kernel({self.name!r})"
