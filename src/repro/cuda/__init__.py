"""A CUDA-like accelerator interface over the simulated hardware.

GMAC (Figure 5) sits on an *Accelerator Abstraction Layer* with two
flavours: one over the CUDA **runtime** API (used to compare against CUDA,
pays context-initialisation cost) and one over the CUDA **driver** API
(full control, no init cost; used for execution-time break-downs).  This
package provides both:

* :mod:`repro.cuda.kernels` -- kernel objects: a numpy function over device
  memory plus a cost model,
* :mod:`repro.cuda.driver` -- the low-level API: contexts, device memory,
  synchronous/asynchronous copies, streams, kernel launch,
* :mod:`repro.cuda.runtime` -- the cudaMalloc/cudaMemcpy/cudaLaunch-style
  API with lazy initialisation, charging the Figure 10 cuda* categories.
"""

from repro.cuda.kernels import Kernel
from repro.cuda.driver import DriverContext, Stream
from repro.cuda.runtime import CudaRuntime

__all__ = ["Kernel", "DriverContext", "Stream", "CudaRuntime"]
