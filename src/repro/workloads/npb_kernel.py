"""Executable companion to Figure 2: the bandwidth wall, simulated.

Figure 2 *estimates* the IPC ceiling analytically; this module runs the
same kernels through the machine's actual resource timelines.  An NPB-like
kernel is split into chunks whose memory traffic streams over the chosen
data path (PCIe for CPU-hosted data, on-board GDDR for accelerator-hosted
data) while compute proceeds in a software pipeline; the achieved IPC is
read off the resulting makespan.  The simulated ceiling converges to the
analytic `spec.max_ipc(bandwidth)` — demonstrating, with the simulator
rather than arithmetic, why "it is crucial to host data structures accessed
by computationally intensive kernels in on-board accelerator memories".
"""

from repro.util.errors import ReproError
from repro.hw.machine import reference_system
from repro.hw.interconnect import Direction
from repro.workloads.npb import NPB_KERNELS, NPB_CLOCK_HZ

#: Chunks in the streaming pipeline (enough to amortise the fill latency).
PIPELINE_CHUNKS = 32


def achieved_ipc(benchmark, placement, target_ipc=100,
                 instructions=4_000_000_000, machine=None):
    """Run one kernel's instruction stream; return the achieved IPC.

    ``placement`` is ``"device"`` (data in accelerator memory, traffic on
    the GDDR interface) or ``"pcie"`` (data in system memory, every access
    crossing the interconnect — the Figure 2 worst case).
    """
    if benchmark not in NPB_KERNELS:
        raise ReproError(f"unknown NPB benchmark {benchmark!r}")
    if placement not in ("device", "pcie"):
        raise ReproError(f"unknown placement {placement!r}")
    spec = NPB_KERNELS[benchmark]
    if machine is None:
        machine = reference_system()

    total_bytes = spec.bytes_per_instruction * instructions
    compute_seconds = instructions / (target_ipc * NPB_CLOCK_HZ)
    start = machine.clock.now

    chunk_compute = compute_seconds / PIPELINE_CHUNKS
    chunk_bytes = total_bytes / PIPELINE_CHUNKS
    # The whole pipeline is issued at one instant (the clock only moves at
    # the final synchronization), so both resource timelines take the burst
    # through the bulk-schedule path: one transfer burst, then the compute
    # chunks with their per-chunk data dependencies.
    if placement == "pcie":
        transfers = machine.link.transfer_many(
            [chunk_bytes] * PIPELINE_CHUNKS, Direction.H2D, label="stream"
        )
        earliest = [transfer.finish for transfer in transfers]
    else:
        # On-board memory: the GPU's memory interface is part of the
        # kernel cost model, so charge the streaming time directly.
        earliest = machine.clock.now + (
            chunk_bytes / machine.gpu.spec.memory_bandwidth_bytes_per_s
        )
    chunks = machine.gpu.engine.schedule_many(
        [chunk_compute] * PIPELINE_CHUNKS,
        label=f"{benchmark}-chunk",
        earliest=earliest,
    )
    machine.clock.advance_to(chunks[-1].finish)
    makespan = machine.clock.now - start
    return instructions / (makespan * NPB_CLOCK_HZ)


def ipc_ceiling(benchmark, placement, target_ipc=100):
    """The simulated ceiling: achieved IPC at an aggressive target."""
    return achieved_ipc(benchmark, placement, target_ipc=target_ipc)
