"""The NAS Parallel Benchmarks model behind Figure 2 and Section 2.2.

The paper motivates ADSM with two trace-derived observations:

* "execution traces show that about 99% of read and write accesses to the
  main data structures in the NASA Parallel Benchmarks occur inside
  computationally intensive kernels",
* Figure 2: the memory bandwidth the kernels of bt/ep/lu/mg/ua would
  require at a given IPC (800MHz clock), against the capacity of PCIe,
  QPI, HyperTransport and GTX295 on-board memory — concluding that PCIe
  caps bt at IPC ≈ 50 and ua at IPC ≈ 5.

We regenerate both from synthetic instruction traces whose per-benchmark
instruction mixes are calibrated to the paper's stated break-points.
"""

from dataclasses import dataclass

import numpy as np

#: Figure 2's clock assumption.
NPB_CLOCK_HZ = 800e6


@dataclass(frozen=True)
class NpbKernelSpec:
    """The instruction mix of one benchmark's computational kernels."""

    name: str
    #: Fraction of kernel instructions that access memory.
    memory_fraction: float
    #: Bytes moved per memory access (double-precision NPB codes).
    bytes_per_access: int = 8
    #: Share of main-data-structure accesses that happen inside kernels
    #: (the Section 2.2 "about 99%" observation).
    kernel_access_share: float = 0.99

    @property
    def bytes_per_instruction(self):
        return self.memory_fraction * self.bytes_per_access

    def required_bandwidth(self, ipc, clock_hz=NPB_CLOCK_HZ):
        """Bandwidth the kernels need to sustain ``ipc`` at ``clock_hz``."""
        if ipc < 0:
            raise ValueError(f"negative IPC {ipc}")
        return self.bytes_per_instruction * ipc * clock_hz

    def max_ipc(self, bandwidth_bytes_per_s, clock_hz=NPB_CLOCK_HZ):
        """The highest IPC a link of the given bandwidth can sustain."""
        denominator = self.bytes_per_instruction * clock_hz
        if denominator == 0:
            return float("inf")
        return bandwidth_bytes_per_s / denominator


#: Instruction mixes calibrated so PCIe 2.0 x16 (5.6GB/s sustained) caps
#: bt at IPC 50 and ua at IPC 5, the paper's stated break-points.
NPB_KERNELS = {
    "bt": NpbKernelSpec("bt", memory_fraction=0.0175),
    "ep": NpbKernelSpec("ep", memory_fraction=0.004),
    "lu": NpbKernelSpec("lu", memory_fraction=0.056),
    "mg": NpbKernelSpec("mg", memory_fraction=0.10),
    "ua": NpbKernelSpec("ua", memory_fraction=0.175),
}


@dataclass(frozen=True)
class TraceSummary:
    """What trace analysis extracts from one synthetic execution trace."""

    name: str
    instructions: int
    memory_accesses: int
    kernel_accesses: int
    bytes_accessed: int

    @property
    def bytes_per_instruction(self):
        return self.bytes_accessed / self.instructions

    @property
    def kernel_access_fraction(self):
        if self.memory_accesses == 0:
            return 0.0
        return self.kernel_accesses / self.memory_accesses


def generate_trace(spec, instructions=200_000, seed=0):
    """Synthesize an execution trace for one benchmark.

    Returns (is_memory, in_kernel) boolean arrays over instructions:
    which instructions access the main data structures, and whether that
    access happens inside a computational kernel.
    """
    if instructions <= 0:
        raise ValueError(f"instruction count must be positive: {instructions}")
    rng = np.random.default_rng(seed)
    is_memory = rng.random(instructions) < spec.memory_fraction
    in_kernel = rng.random(instructions) < spec.kernel_access_share
    return is_memory, is_memory & in_kernel


def analyze_trace(spec, is_memory, in_kernel):
    """Reduce a trace to the Figure 2 / Section 2.2 inputs."""
    memory_accesses = int(is_memory.sum())
    return TraceSummary(
        name=spec.name,
        instructions=len(is_memory),
        memory_accesses=memory_accesses,
        kernel_accesses=int(in_kernel.sum()),
        bytes_accessed=memory_accesses * spec.bytes_per_access,
    )


def trace_summary(name, instructions=200_000, seed=0):
    """Generate-and-analyze convenience for one benchmark name."""
    spec = NPB_KERNELS[name]
    is_memory, in_kernel = generate_trace(spec, instructions, seed)
    return analyze_trace(spec, is_memory, in_kernel)


def bandwidth_series(name, ipc_values, clock_hz=NPB_CLOCK_HZ):
    """The Figure 2 curve for one benchmark over a sweep of IPC values."""
    spec = NPB_KERNELS[name]
    return [spec.required_bandwidth(ipc, clock_hz) for ipc in ipc_values]
