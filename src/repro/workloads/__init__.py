"""Workloads: the programs the paper's evaluation runs.

* :mod:`repro.workloads.base` -- the dual-mode harness: every workload has
  a hand-tuned CUDA-style variant (explicit ``cudaMemcpy``) and a GMAC
  variant (no copies), both validated against a pure-numpy oracle,
* :mod:`repro.workloads.vecadd` -- the Figure 11 vector-add micro-benchmark,
* :mod:`repro.workloads.stencil3d` -- the Figure 9 3D-Stencil computation,
* :mod:`repro.workloads.parboil` -- the seven Parboil-like benchmarks of
  Table 2 (cp, mri-fhd, mri-q, pns, rpes, sad, tpacf),
* :mod:`repro.workloads.npb` -- the NPB trace/bandwidth model behind
  Figure 2 and the Section 2.2 motivation numbers.
"""

from repro.workloads.base import Application, Workload, WorkloadResult

__all__ = ["Application", "Workload", "WorkloadResult"]
