"""The Figure 9 workload: an iterative 3D-Stencil computation.

Section 5.1: "The 3D-Stencil computation requires introducing a source on
the target volume on each time-step ... the CPU executes the code that
performs the source introduction.  Lazy-update requires transferring the
entire volume prior to introducing the source, while rolling-update only
requires transferring the few memory blocks that are actually modified by
the CPU."  The computation also "requires writing to disk the output volume
every certain number of iterations", where *large* blocks win because big
transfers use the interconnect and disk bandwidth efficiently — the two
opposing forces whose balance Figure 9 sweeps across volume and block
sizes.

Structure per time-step: the CPU adds a point source at the volume centre
(a read-modify-write of a few bytes), the accelerator applies a 7-point
stencil into the ping-pong buffer, and every ``dump_interval`` steps the
current volume is written to disk through ``write()`` (which GMAC's
interposition performs in block-sized chunks).
"""

import numpy as np

from repro.analysis.contracts import access_modes
from repro.cuda.kernels import Kernel
from repro.workloads.base import Workload, ValueMemo, memoized_input

#: Stencil coefficients: centre and face weights of the 7-point operator.
CENTER_WEIGHT = np.float32(0.4)
FACE_WEIGHT = np.float32(0.1)

#: CPU rate for the source-introduction arithmetic.
CPU_STREAM_RATE = 2.0e9


def stencil_reference_step(volume, out=None):
    """One 7-point stencil step (pure numpy; boundary cells pass through).

    ``out`` (which must not alias ``volume``) receives the result in
    place, saving the full-volume copy the allocating path pays.
    """
    if out is None:
        out = volume.copy()
    else:
        np.copyto(out, volume)
    interior = CENTER_WEIGHT * volume[1:-1, 1:-1, 1:-1] + FACE_WEIGHT * (
        volume[:-2, 1:-1, 1:-1] + volume[2:, 1:-1, 1:-1]
        + volume[1:-1, :-2, 1:-1] + volume[1:-1, 2:, 1:-1]
        + volume[1:-1, 1:-1, :-2] + volume[1:-1, 1:-1, 2:]
    )
    out[1:-1, 1:-1, 1:-1] = interior
    return out


#: Figure 9 sweeps block/volume sizes over the *same* per-step volume
#: trajectory, so each step's input volume recurs across many specs; one
#: entry per step state (max_entries covers a full quick run's steps).
_STEP_MEMO = ValueMemo(max_entries=24)


def _stencil_fn(gpu, vin, vout, n):
    volume = gpu.view(vin, "f4", n ** 3).reshape(n, n, n)
    result = gpu.view(vout, "f4", n ** 3).reshape(n, n, n)
    cached = _STEP_MEMO.lookup(n, (volume,))
    if cached is None:
        # vin and vout are distinct ping-pong allocations, so the step can
        # write the device view directly (identical bytes, one copy fewer).
        stencil_reference_step(volume, out=result)
        _STEP_MEMO.store(n, (volume,), (result.copy(),))
    else:
        np.copyto(result, cached[0])


def _stencil_batched(gpu, launches):
    """Replay deferred steps in order.

    ``batch_by`` admits the alternating ping-pong pointers, so a run of
    steps whose intervening source-introductions happened on already-host-
    canonical blocks (no device fetch between launches) replays here in
    one flush.
    """
    for args in launches:
        _stencil_fn(gpu, **args)


#: ~8 flops and two 4-byte streams per cell.
STENCIL = Kernel(
    "stencil3d",
    _stencil_fn,
    cost=lambda vin, vout, n: (8 * n ** 3, 8 * n ** 3),
    writes=("vout",),
    batched_fn=_stencil_batched,
    batch_by=("vin", "vout"),
)


@access_modes(**{"volume-a": "rw", "volume-b": "rw"})
class Stencil3D(Workload):
    """Iterative stencil with CPU source introduction and periodic dumps."""

    name = "3d-stencil"
    description = "7-point stencil with per-step CPU source introduction"

    def __init__(self, n=64, steps=20, dump_interval=10, source_value=5.0,
                 seed=7):
        super().__init__(seed=seed)
        self.n = n
        self.steps = steps
        self.dump_interval = dump_interval
        self.source_value = np.float32(source_value)
        self.initial = memoized_input(
            ("stencil3d", n, seed),
            lambda: np.random.default_rng(seed)
            .random((n, n, n))
            .astype(np.float32),
        )

    @property
    def volume_bytes(self):
        return 4 * self.n ** 3

    def _dump_path(self, step):
        return f"stencil-{self.n}-{step}.out"

    def reference(self):
        volume = self.initial.copy()
        outputs = {}
        centre = self.n // 2
        for step in range(self.steps):
            volume[centre, centre, centre] += self.source_value
            volume = stencil_reference_step(volume)
            if (step + 1) % self.dump_interval == 0:
                outputs[self._dump_path(step + 1)] = volume.copy()
        return outputs

    def _collect_dumps(self, app):
        outputs = {}
        for step in range(self.steps):
            if (step + 1) % self.dump_interval == 0:
                path = self._dump_path(step + 1)
                raw = app.fs.data_of(path)
                outputs[path] = np.frombuffer(raw, dtype=np.float32).reshape(
                    self.n, self.n, self.n
                )
        return outputs

    def _source_offset(self):
        centre = self.n // 2
        index = (centre * self.n + centre) * self.n + centre
        return 4 * index

    def run_cuda(self, app):
        cuda = app.cuda()
        nbytes = self.volume_bytes
        n = self.n
        host_volume = app.process.malloc(nbytes)
        cell = app.process.malloc(4)
        dev_a = cuda.cuda_malloc(nbytes)
        dev_b = cuda.cuda_malloc(nbytes)
        host_volume.write_array(self.initial)
        cuda.cuda_memcpy_h2d(dev_a, host_volume, nbytes)
        offset = self._source_offset()
        current, scratch = dev_a, dev_b
        for step in range(self.steps):
            # Hand-tuned source introduction: move only the source cell.
            cuda.cuda_memcpy_d2h(cell, current + offset, 4)
            value = np.frombuffer(cell.read_bytes(4), dtype=np.float32)[0]
            app.machine.cpu.stream(64, CPU_STREAM_RATE, label="source")
            cell.write_array(np.array([value + self.source_value], "f4"))
            cuda.cuda_memcpy_h2d(current + offset, cell, 4)
            cuda.launch(STENCIL, vin=current, vout=scratch, n=n)
            cuda.cuda_thread_synchronize()
            current, scratch = scratch, current
            if (step + 1) % self.dump_interval == 0:
                cuda.cuda_memcpy_d2h(host_volume, current, nbytes)
                with app.fs.open(self._dump_path(step + 1), "w") as handle:
                    app.libc.write(handle, int(host_volume), nbytes)
        return self._collect_dumps(app)

    def run_gmac(self, app, gmac):
        nbytes = self.volume_bytes
        n = self.n
        volume_a = gmac.alloc(nbytes, name="volume-a")
        volume_b = gmac.alloc(nbytes, name="volume-b")
        volume_a.write_array(self.initial)
        app.machine.cpu.stream(nbytes, CPU_STREAM_RATE, label="init")
        offset = self._source_offset()
        current, scratch = volume_a, volume_b
        for step in range(self.steps):
            # Source introduction: plain CPU loads/stores; the coherence
            # protocol decides how much data actually moves.
            value = np.frombuffer(
                current.read_bytes(4, offset=offset), dtype=np.float32
            )[0]
            app.machine.cpu.stream(64, CPU_STREAM_RATE, label="source")
            current.write_array(
                np.array([value + self.source_value], "f4"), offset=offset
            )
            gmac.call(STENCIL, vin=current, vout=scratch, n=n)
            gmac.sync()
            current, scratch = scratch, current
            if (step + 1) % self.dump_interval == 0:
                with app.fs.open(self._dump_path(step + 1), "w") as handle:
                    app.libc.write(handle, int(current), nbytes)
        return self._collect_dumps(app)
