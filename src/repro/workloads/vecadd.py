"""The Figure 11 micro-benchmark: element-wise vector addition.

"We use a micro-benchmark that adds up two 8 million elements vectors to
show how the execution time varies for different memory block size values"
(Section 5.2).  The CPU produces both input vectors sequentially (which,
under rolling-update, triggers one write fault per block and eager eviction
of older blocks), the kernel adds them on the accelerator, and the CPU then
consumes the whole result (one read fault + fetch per block).

The experiment extracts two phase times per block size:

* **CPU to GPU time** — from the start of initialisation until the last
  host-to-device transfer has completed, minus the pure compute cost of
  producing the data.  Small blocks pay per-fault overhead (signal +
  O(log n) tree search); large blocks lose the eager overlap because each
  eviction must wait for the previous transfer (the 64KB anomaly).
* **GPU to CPU time** — the result read-back, paying one fault + one
  block transfer per block.
"""

import numpy as np

from repro.analysis.contracts import access_modes
from repro.cuda.kernels import Kernel
from repro.workloads.base import Workload, memoized_input

#: Rate at which the CPU inner loop produces/consumes vector elements; a
#: cache-resident store loop streams much faster than the PCIe bus moves
#: data, which is what makes eager eviction worth overlapping.
CPU_STREAM_RATE = 2.0e9

#: Chunk in which the CPU production loop advances (a few thousand loop
#: iterations between progress points).
PRODUCE_CHUNK = 16 * 1024


def _vecadd_fn(gpu, a, b, c, n):
    va = gpu.view(a, "f4", n)
    vb = gpu.view(b, "f4", n)
    vc = gpu.view(c, "f4", n)
    np.add(va, vb, out=vc)


#: One add + three 4-byte streams per element.
VECADD = Kernel(
    "vecadd",
    _vecadd_fn,
    cost=lambda a, b, c, n: (n, 12 * n),
    writes=("c",),
)


@access_modes(a="ro", b="ro", c="wo")
class VectorAdd(Workload):
    """Two input vectors produced on the CPU, summed on the accelerator."""

    name = "vecadd"
    description = "element-wise addition of two large vectors (Section 5.2)"

    def __init__(self, elements=2 * 1024 * 1024, seed=7):
        super().__init__(seed=seed)
        self.elements = elements
        def build():
            rng = np.random.default_rng(seed)
            a = rng.random(elements).astype(np.float32)
            b = rng.random(elements).astype(np.float32)
            return a, b

        self.a, self.b = memoized_input(("vecadd", elements, seed), build)

    @property
    def vector_bytes(self):
        return 4 * self.elements

    def reference(self):
        return {"c": self.a + self.b}

    # -- variants ----------------------------------------------------------------

    def _produce(self, app, ptr, values):
        """Sequential element production: compute a chunk, store a chunk.

        The source array is viewed, never serialized: each stored chunk is
        a memoryview slice flowing into the simulated memory's numpy
        backing with no intermediate ``bytes``.
        """
        raw = memoryview(values).cast("B")
        for offset in range(0, len(raw), PRODUCE_CHUNK):
            chunk = raw[offset:offset + PRODUCE_CHUNK]
            app.machine.cpu.stream(len(chunk), CPU_STREAM_RATE, label="init")
            ptr.write_bytes(chunk, offset=offset)

    def _consume(self, app, ptr, nbytes):
        """Sequential result consumption; returns the values as float32.

        Chunks land directly in one preallocated output array
        (:meth:`~repro.os.process.Ptr.read_into`); the only copy is the
        one that materializes the result itself.
        """
        out = np.empty(nbytes, dtype=np.uint8)
        for offset in range(0, nbytes, PRODUCE_CHUNK):
            size = min(PRODUCE_CHUNK, nbytes - offset)
            ptr.read_into(out[offset:offset + size], offset=offset)
            app.machine.cpu.stream(size, CPU_STREAM_RATE, label="consume")
        return out.view(np.float32)

    def run_cuda(self, app):
        cuda = app.cuda()
        nbytes = self.vector_bytes
        host_a = app.process.malloc(nbytes)
        host_b = app.process.malloc(nbytes)
        host_c = app.process.malloc(nbytes)
        dev_a = cuda.cuda_malloc(nbytes)
        dev_b = cuda.cuda_malloc(nbytes)
        dev_c = cuda.cuda_malloc(nbytes)
        self._produce(app, host_a, self.a)
        self._produce(app, host_b, self.b)
        cuda.cuda_memcpy_h2d(dev_a, host_a, nbytes)
        cuda.cuda_memcpy_h2d(dev_b, host_b, nbytes)
        cuda.launch(VECADD, a=dev_a, b=dev_b, c=dev_c, n=self.elements)
        cuda.cuda_thread_synchronize()
        cuda.cuda_memcpy_d2h(host_c, dev_c, nbytes)
        return {"c": self._consume(app, host_c, nbytes)}

    def run_cuda_db(self, app, chunk_bytes=256 * 1024):
        """The hand-tuned double-buffered baseline (Section 2.2).

        "Double buffering can help to alleviate this situation by
        transferring parts of the data structure while other parts are
        still in use ... Synchronization code is necessary to prevent
        overwriting system memory that is still in use by an ongoing DMA
        transfer."  This is that code: two staging buffers, asynchronous
        chunk transfers overlapped with production, and the explicit
        synchronization the paper calls a programmability cost — GMAC's
        rolling-update achieves the same overlap with none of it.
        """
        from repro.cuda.driver import Stream

        cuda = app.cuda()
        clock = app.machine.clock
        nbytes = self.vector_bytes
        stream = Stream("upload")
        staging = [app.process.malloc(chunk_bytes) for _ in range(2)]
        in_flight = [None, None]
        dev_a = cuda.cuda_malloc(nbytes)
        dev_b = cuda.cuda_malloc(nbytes)
        dev_c = cuda.cuda_malloc(nbytes)
        host_c = app.process.malloc(nbytes)

        for device, values in ((dev_a, self.a), (dev_b, self.b)):
            raw = memoryview(values).cast("B")
            for index, offset in enumerate(range(0, nbytes, chunk_bytes)):
                buffer = index % 2
                # The synchronization the paper warns about: the staging
                # buffer must not be overwritten mid-DMA.
                if in_flight[buffer] is not None:
                    clock.advance_to(in_flight[buffer].finish)
                chunk = raw[offset:offset + chunk_bytes]
                app.machine.cpu.stream(
                    len(chunk), CPU_STREAM_RATE, label="init"
                )
                staging[buffer].write_bytes(chunk)
                in_flight[buffer] = cuda.cuda_memcpy_h2d_async(
                    device + offset, staging[buffer], len(chunk), stream
                )
        cuda.launch(
            VECADD, stream=stream, a=dev_a, b=dev_b, c=dev_c, n=self.elements
        )
        cuda.cuda_thread_synchronize()
        cuda.cuda_memcpy_d2h(host_c, dev_c, nbytes)
        return {"c": self._consume(app, host_c, nbytes)}

    def run_gmac(self, app, gmac):
        nbytes = self.vector_bytes
        clock = app.machine.clock
        a = gmac.alloc(nbytes, name="a")
        b = gmac.alloc(nbytes, name="b")
        c = gmac.alloc(nbytes, name="c")

        init_start = clock.now
        self._produce(app, a, self.a)
        self._produce(app, b, self.b)
        init_end = clock.now
        completion = gmac.call(VECADD, a=a, b=b, c=c, n=self.elements)
        h2d_done = completion.start  # the launch waited for the H2D queue
        gmac.sync()
        sync_end = clock.now
        result = self._consume(app, c, nbytes)
        read_end = clock.now

        ideal_compute = 2 * nbytes / CPU_STREAM_RATE
        self.phases = {
            "cpu_to_gpu_s": max(0.0, h2d_done - init_start - ideal_compute),
            "gpu_to_cpu_s": max(
                0.0, (read_end - sync_end) - nbytes / CPU_STREAM_RATE
            ),
            "init_s": init_end - init_start,
            "kernel_wait_s": sync_end - init_end,
        }
        return {"c": result}


def transfer_phase_times(block_size, elements=2 * 1024 * 1024):
    """Run vecadd under rolling-update at ``block_size``; returns phases.

    The helper behind the Figure 11 sweep: one fresh machine per block
    size, fixed generous rolling size (the sweep isolates block size).
    """
    workload = VectorAdd(elements=elements)
    result = workload.execute(
        mode="gmac",
        protocol="rolling",
        gmac_options={
            # A fixed dirty-block window isolates the block-size effect;
            # the adaptive default would give 3 allocations x 2 = 6 blocks.
            "protocol_options": {"block_size": block_size, "rolling_size": 16},
            "layer": "driver",
        },
    )
    phases = dict(workload.phases)
    phases["elapsed_s"] = result.elapsed
    phases["verified"] = result.verified
    phases["faults"] = result.faults
    return phases
