"""The dual-mode workload harness.

Every workload in the evaluation exists in two source variants, exactly as
in the paper's porting experiment (Section 5):

* **cuda mode** — the hand-tuned baseline: explicit ``cudaMalloc`` /
  ``cudaMemcpy`` calls, duplicated pointers, manual coherence;
* **gmac mode** — the ADSM port: a single ``adsmAlloc`` pointer per object
  and *no* explicit transfers (the port only removes lines).

Both variants share the kernels and are validated against a pure-numpy
oracle, so a protocol bug shows up as a numerical mismatch, not just a
timing anomaly.  :meth:`Workload.execute` runs one variant on a fresh
machine and returns a :class:`WorkloadResult` with the virtual time, the
Figure 10 break-down and the Figure 8 byte counters.
"""

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import ReproError
from repro.hw.machine import reference_system
from repro.hw.interconnect import Direction
from repro.os.process import Process
from repro.os.filesystem import FileSystem
from repro.os.libc import Libc
from repro.cuda.runtime import CudaRuntime
from repro.core.api import Gmac

#: Process-global count of :meth:`Workload.execute` calls.  The executor's
#: cache tests assert a warm rerun performs *zero* executions; there is no
#: other observable distinguishing "simulated quickly" from "not run".
EXECUTIONS = 0

#: Memoized oracle outputs, keyed by workload class + constructor params.
#: ``reference()`` is a pure function of the constructor arguments (every
#: workload builds its inputs deterministically from them), while a figure
#: sweep executes many specs sharing one workload configuration — cuda vs
#: gmac, per protocol, per block size — and each used to recompute the
#: identical oracle.  Cached arrays are marked read-only so verification
#: can never corrupt a shared copy.
_REFERENCE_CACHE = {}
_REFERENCE_CACHE_MAX = 32

#: Memoized deterministic inputs, keyed by an explicit per-workload key.
#: Every constructor builds its input arrays as a pure function of the
#: constructor parameters (sizes + rng seed), and a figure sweep constructs
#: the same configuration dozens of times — cuda vs gmac, per protocol,
#: per block size.  Cached arrays are handed out read-only, so a variant
#: that mutated a shared input would raise instead of silently corrupting
#: the next run.
_INPUT_CACHE = {}
_INPUT_CACHE_MAX = 64


def memoized_input(key, builder):
    """Build-once deterministic input arrays.

    ``builder`` is a zero-argument pure function returning a numpy array or
    a tuple of numpy arrays; the result is cached under ``key`` (which must
    include every parameter the builder depends on) and marked read-only.
    """
    cached = _INPUT_CACHE.get(key)
    if cached is None:
        cached = builder()
        arrays = cached if isinstance(cached, tuple) else (cached,)
        for array in arrays:
            array.setflags(write=False)
        while len(_INPUT_CACHE) >= _INPUT_CACHE_MAX:
            _INPUT_CACHE.pop(next(iter(_INPUT_CACHE)))
        _INPUT_CACHE[key] = cached
    return cached


def _fingerprint(array):
    """Cheap mismatch filter: shape, dtype, and ~16 strided sample bytes.

    Unequal fingerprints prove the arrays differ; equal fingerprints only
    admit the candidate to the full byte compare, so the filter cannot
    produce a false hit.
    """
    step = max(1, array.size // 16)
    return (array.shape, array.dtype.str, array.ravel()[::step].tobytes())


class ValueMemo:
    """Byte-exact reuse of pure kernel evaluations.

    A figure sweep evaluates the same kernel numerics dozens of times —
    cuda vs gmac, per protocol, per block size — over identical device
    bytes.  A hit here requires *every* input array to compare bit-equal
    (``np.array_equal``, a memcmp) against a stored evaluation's inputs,
    so reuse can never change an output byte: it only skips recomputing a
    result already produced for the very same input bytes.  Inputs are
    snapshotted at store time and outputs handed out read-only.

    ``max_entries`` bounds the evaluations remembered per key (iterative
    kernels store one entry per distinct input state); entries whose
    arrays exceed ``max_entry_bytes`` are computed but never stored, so
    full-size experiment sweeps cannot balloon host memory — they simply
    fall back to recomputing, exactly as before.
    """

    def __init__(self, max_entries=8, max_entry_bytes=4 << 20):
        self.max_entries = max_entries
        self.max_entry_bytes = max_entry_bytes
        self._entries = {}

    def clear(self):
        """Forget every remembered evaluation.

        Needed when the numerics provider changes mid-process — tests that
        flip ``REPRO_KERNEL_BACKEND`` must not let one backend's outputs
        satisfy the other's lookups.
        """
        self._entries.clear()

    def lookup(self, key, inputs):
        entries = self._entries.get(key)
        if not entries:
            return None
        prints = tuple(_fingerprint(array) for array in inputs)
        for stored_prints, stored, outputs in entries:
            if stored_prints != prints:
                continue
            if all(
                np.array_equal(given, kept)
                for given, kept in zip(inputs, stored)
            ):
                return outputs
        return None

    def store(self, key, inputs, outputs):
        for array in outputs:
            array.setflags(write=False)
        footprint = sum(array.nbytes for array in inputs)
        footprint += sum(array.nbytes for array in outputs)
        if footprint <= self.max_entry_bytes:
            entries = self._entries.setdefault(key, [])
            if len(entries) >= self.max_entries:
                entries.pop(0)
            snapshot = tuple(np.array(array, copy=True) for array in inputs)
            prints = tuple(_fingerprint(array) for array in snapshot)
            entries.append((prints, snapshot, outputs))
        return outputs


class Application:
    """Process + filesystem + libc: the environment one run executes in."""

    def __init__(self, machine):
        self.machine = machine
        self.process = Process(machine)
        self.fs = FileSystem(machine.disk)
        self.libc = Libc(self.process, self.fs, machine.accounting)

    def gmac(self, **kwargs):
        """Create a GMAC instance bound to this application."""
        return Gmac(self.machine, self.process, libc=self.libc, **kwargs)

    def cuda(self, **kwargs):
        """Create a CUDA runtime bound to this application."""
        return CudaRuntime(self.machine, self.process, **kwargs)


@dataclass
class WorkloadResult:
    """Everything one run produced."""

    workload: str
    mode: str                     # "cuda" or "gmac"
    protocol: str                 # coherence protocol ("-" for cuda mode)
    elapsed: float                # virtual seconds, end to end
    breakdown: dict               # Figure 10 category -> seconds
    bytes_to_accelerator: int     # Figure 8, host -> accelerator
    bytes_to_host: int            # Figure 8, accelerator -> host
    faults: int                   # page faults GMAC handled
    signals: int                  # SIGSEGVs delivered by the OS
    verified: bool                # outputs matched the numpy oracle
    extra: dict = field(default_factory=dict)

    @property
    def label(self):
        if self.mode == "cuda":
            return "CUDA"
        return f"GMAC {self.protocol}"


class Workload(abc.ABC):
    """One benchmark: two variants, one oracle, deterministic inputs."""

    #: Short Parboil-style name ("cp", "mri-q", ...).
    name = "abstract"
    #: Table 2 style description.
    description = ""

    def __init__(self, seed=7):
        self.seed = seed

    # -- hooks ---------------------------------------------------------------------

    def prepare(self, app):
        """Create input files / oracle state.  Runs before the clock matters
        (file creation charges no disk time; only reads do)."""

    @abc.abstractmethod
    def run_cuda(self, app):
        """The explicit-transfer variant; returns outputs for verification."""

    @abc.abstractmethod
    def run_gmac(self, app, gmac):
        """The ADSM variant; returns outputs for verification."""

    @abc.abstractmethod
    def reference(self):
        """Pure-numpy oracle outputs (dict name -> array)."""

    # -- driver -----------------------------------------------------------------------

    def execute(self, mode="gmac", protocol="rolling", machine=None,
                gmac_options=None):
        """Run one variant on a fresh machine; returns a WorkloadResult."""
        global EXECUTIONS
        EXECUTIONS += 1
        if machine is None:
            machine = reference_system()
        app = Application(machine)
        self.prepare(app)
        start = machine.clock.now
        sanitizer = None
        if mode == "gmac":
            gmac_options = dict(gmac_options or {})
            if protocol == "declared":
                # The declared protocol consumes the workload's verified
                # @access_modes contract; injecting it here keeps specs
                # and experiments protocol-name-only (modes are a pure
                # function of the workload class, so cache keys hold).
                declared = getattr(type(self), "declared_modes", None)
                if declared:
                    options = dict(gmac_options.get("protocol_options") or {})
                    options.setdefault("modes", dict(declared))
                    gmac_options["protocol_options"] = options
            gmac = app.gmac(protocol=protocol, **gmac_options)
            sanitizer = self._sanitizer_for(gmac, protocol)
            try:
                outputs = self.run_gmac(app, gmac)
            except BaseException:
                # Persist whatever the sanitizer saw (the violations often
                # explain the crash), but let the original error surface.
                if sanitizer is not None:
                    sanitizer.finish(raise_on_violation=False)
                raise
            if sanitizer is not None:
                sanitizer.finish()
        else:
            # "cuda" plus any extra hand-tuned variants a workload defines
            # (e.g. "cuda-db" -> run_cuda_db, the double-buffered baseline).
            variant = getattr(self, "run_" + mode.replace("-", "_"), None)
            if variant is None:
                raise ReproError(f"unknown workload mode {mode!r}")
            outputs = variant(app)
            gmac = None
        elapsed = machine.clock.now - start
        verified = self._verify(outputs)
        return WorkloadResult(
            workload=self.name,
            mode=mode,
            protocol=protocol if mode == "gmac" else "-",
            elapsed=elapsed,
            breakdown=machine.accounting.breakdown(),
            bytes_to_accelerator=(
                gmac.bytes_to_accelerator if gmac is not None
                else machine.link.bytes_moved[Direction.H2D]
            ),
            bytes_to_host=(
                gmac.bytes_to_host if gmac is not None
                else machine.link.bytes_moved[Direction.D2H]
            ),
            faults=gmac.fault_count if gmac is not None else 0,
            signals=app.process.signals.delivered,
            verified=verified,
            extra={
                "machine": machine, "app": app, "gmac": gmac,
                **(
                    {"sanitizer": sanitizer.stats()}
                    if sanitizer is not None else {}
                ),
            },
        )

    def _sanitizer_for(self, gmac, protocol):
        """Arm the coherence checker + race detector when sanitizing is on.

        Imported lazily: the common (unsanitized) path never pays for the
        analysis package.
        """
        from repro import analysis

        if not analysis.enabled():
            return None
        return analysis.attach_sanitizer(
            gmac, context=f"{self.name}:{protocol}"
        )

    def execute_stats(self, runs=3, mode="gmac", protocol="rolling",
                      gmac_options=None):
        """Repeated execution with varied seeds; summary statistics.

        The paper executes each benchmark 16 times and reports averages;
        the simulator is deterministic per seed, so repetition varies the
        workload seed instead and summarizes elapsed virtual time.
        """
        from repro.util.stats import summarize

        if runs < 1:
            raise ReproError(f"need at least one run, got {runs}")
        elapsed = []
        results = []
        for repetition in range(runs):
            workload = type(self)(**self._repeat_params(repetition))
            result = workload.execute(
                mode=mode, protocol=protocol, gmac_options=gmac_options
            )
            if not result.verified:
                raise ReproError(
                    f"{self.name} run {repetition} failed verification"
                )
            elapsed.append(result.elapsed)
            results.append(result)
        return summarize(elapsed), results

    def _repeat_params(self, repetition):
        """Constructor kwargs for repetition N: same sizes, varied seed.

        Works for any workload whose constructor parameters are stored as
        same-named attributes (all of ours are); override otherwise.
        """
        import inspect

        params = {}
        for name in inspect.signature(type(self).__init__).parameters:
            if name != "self" and hasattr(self, name):
                params[name] = getattr(self, name)
        params["seed"] = self.seed + repetition
        return params

    def _reference_key(self):
        """Cache key for the oracle, or None when params are not hashable.

        Mirrors :meth:`_repeat_params`: constructor parameters are stored
        as same-named attributes.  A parameter that is missing or not a
        plain scalar disables caching for that workload instance rather
        than risking a stale or colliding entry.
        """
        import inspect

        items = []
        for name in inspect.signature(type(self).__init__).parameters:
            if name == "self":
                continue
            if not hasattr(self, name):
                return None
            value = getattr(self, name)
            if isinstance(value, np.generic):
                # Constructors may normalize to numpy scalars (e.g. a
                # float32 source term); key on the exact Python value.
                value = value.item()
            if not isinstance(value, (int, float, str, bool, bytes)):
                return None
            items.append((name, value))
        return (type(self).__module__, type(self).__qualname__, tuple(items))

    def _reference_outputs(self):
        key = self._reference_key()
        if key is None:
            return self.reference()
        cached = _REFERENCE_CACHE.get(key)
        if cached is None:
            cached = {}
            for name, value in self.reference().items():
                array = np.asarray(value)
                array.setflags(write=False)
                cached[name] = array
            while len(_REFERENCE_CACHE) >= _REFERENCE_CACHE_MAX:
                _REFERENCE_CACHE.pop(next(iter(_REFERENCE_CACHE)))
            _REFERENCE_CACHE[key] = cached
        return cached

    def _verify(self, outputs):
        expected = self._reference_outputs()
        for key, reference_value in expected.items():
            if key not in outputs:
                return False
            produced = np.asarray(outputs[key])
            reference_value = np.asarray(reference_value)
            if produced.shape != reference_value.shape:
                return False
            if (
                produced.dtype == reference_value.dtype
                and np.array_equal(produced, reference_value)
            ):
                # Bitwise match (the usual case: both sides run the same
                # float ops) — skip allclose's temporaries.
                continue
            if not np.allclose(produced, reference_value,
                               rtol=1e-4, atol=1e-5):
                return False
        return True
