"""rpes — Rys Polynomial Equation Solver (Table 2).

"Calculates 2-electron repulsion integrals which represent the Coulomb
interaction between electrons in molecules."  Structurally: a large
device-resident parameter set, an accumulator updated by one kernel call
per quadrature root, and a CPU that only consumes the final accumulator.
Like pns it is iterative with device-resident data, which is why
batch-update suffers its second-largest Figure 7 slow-down (18.61x).
"""

import numpy as np

from repro.cuda.kernels import Kernel
from repro.workloads.base import Workload, memoized_input

CPU_STREAM_RATE = 2.0e9


def rys_term(params, root):
    """One quadrature term: a cubic polynomial of the root per integral."""
    p0, p1, p2, p3 = params.reshape(4, -1)
    t = np.float32(root)
    return (p0 + t * (p1 + t * (p2 + t * p3))).astype(np.float32)


def _rpes_fn(gpu, params, integrals, n_integrals, root, weight):
    table = gpu.view(params, "f4", 4 * n_integrals)
    acc = gpu.view(integrals, "f4", n_integrals)
    acc += np.float32(weight) * rys_term(table, root)


#: ~10 flops and 20 bytes of traffic per integral per root.
RPES_KERNEL = Kernel(
    "rpes",
    _rpes_fn,
    cost=lambda params, integrals, n_integrals, root, weight: (
        10 * n_integrals,
        20 * n_integrals,
    ),
    writes=("integrals",),
)


class RysPolynomial(Workload):
    name = "rpes"
    description = "2-electron repulsion integrals by Rys quadrature"

    def __init__(self, n_integrals=512 * 1024, n_roots=64, seed=7):
        super().__init__(seed=seed)
        self.n_integrals = n_integrals
        self.n_roots = n_roots
        def build():
            rng = np.random.default_rng(seed)
            params = (
                rng.random(4 * n_integrals).astype(np.float32) * 2.0 - 1.0
            )
            roots = rng.random(n_roots).astype(np.float32)
            weights = rng.random(n_roots).astype(np.float32)
            return params, roots, weights

        self.params, self.roots, self.weights = memoized_input(
            ("rpes", n_integrals, n_roots, seed), build
        )

    @property
    def params_bytes(self):
        return 16 * self.n_integrals

    @property
    def integrals_bytes(self):
        return 4 * self.n_integrals

    def reference(self):
        acc = np.zeros(self.n_integrals, dtype=np.float32)
        for root, weight in zip(self.roots, self.weights):
            acc += weight * rys_term(self.params, root)
        return {"integrals": acc}

    def run_cuda(self, app):
        cuda = app.cuda()
        host_params = app.process.malloc(self.params_bytes)
        host_integrals = app.process.malloc(self.integrals_bytes)
        dev_params = cuda.cuda_malloc(self.params_bytes)
        dev_integrals = cuda.cuda_malloc(self.integrals_bytes)
        host_params.write_array(self.params)
        app.machine.cpu.stream(self.params_bytes, CPU_STREAM_RATE, label="init")
        cuda.cuda_memcpy_h2d(dev_params, host_params, self.params_bytes)
        cuda.cuda_memset(dev_integrals, 0, self.integrals_bytes)
        for root, weight in zip(self.roots, self.weights):
            cuda.launch(
                RPES_KERNEL,
                params=dev_params,
                integrals=dev_integrals,
                n_integrals=self.n_integrals,
                root=float(root),
                weight=float(weight),
            )
            cuda.cuda_thread_synchronize()
        cuda.cuda_memcpy_d2h(host_integrals, dev_integrals, self.integrals_bytes)
        result = host_integrals.read_array("f4", self.n_integrals)
        app.machine.cpu.stream(
            self.integrals_bytes, CPU_STREAM_RATE, label="post"
        )
        return {"integrals": result}

    def run_gmac(self, app, gmac):
        params = gmac.alloc(self.params_bytes, name="params")
        integrals = gmac.alloc(self.integrals_bytes, name="integrals")
        params.write_array(self.params)
        app.machine.cpu.stream(self.params_bytes, CPU_STREAM_RATE, label="init")
        gmac.memset(integrals, 0, self.integrals_bytes)
        for root, weight in zip(self.roots, self.weights):
            gmac.call(
                RPES_KERNEL,
                params=params,
                integrals=integrals,
                n_integrals=self.n_integrals,
                root=float(root),
                weight=float(weight),
            )
            gmac.sync()
        result = integrals.read_array("f4", self.n_integrals)
        app.machine.cpu.stream(
            self.integrals_bytes, CPU_STREAM_RATE, label="post"
        )
        return {"integrals": result}
