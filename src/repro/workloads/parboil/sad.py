"""sad — Sum of Absolute Differences (Table 2).

"Sum of absolute differences kernel, used in MPEG video encoders", based on
full-pixel motion estimation: for every 16x16 macroblock of the current
frame, the SAD against the reference frame is evaluated at every offset of
a search window.  Both frames come from disk (I/O in, like a video
encoder's frame pipeline) and the SAD table goes back to disk.
"""

import numpy as np

from repro.cuda.kernels import Kernel
from repro.workloads.base import Workload, memoized_input

CPU_STREAM_RATE = 2.0e9

MACROBLOCK = 16


def sad_reference(current, reference, search):
    """SAD of each macroblock at every (dy, dx) in the search window."""
    height, width = current.shape
    blocks_y = height // MACROBLOCK
    blocks_x = width // MACROBLOCK
    result = np.zeros((blocks_y, blocks_x, search, search), dtype=np.int32)
    padded = np.pad(
        reference.astype(np.int32),
        ((0, search), (0, search)),
        mode="edge",
    )
    current32 = current.astype(np.int32)
    for dy in range(search):
        for dx in range(search):
            shifted = padded[dy:dy + height, dx:dx + width]
            diff = np.abs(current32 - shifted)
            per_block = diff.reshape(
                blocks_y, MACROBLOCK, blocks_x, MACROBLOCK
            ).sum(axis=(1, 3))
            result[:, :, dy, dx] = per_block
    return result


def _sad_fn(gpu, current, reference, sads, width, height, search):
    cur = gpu.view(current, "u1", width * height).reshape(height, width)
    ref = gpu.view(reference, "u1", width * height).reshape(height, width)
    blocks = (height // MACROBLOCK) * (width // MACROBLOCK)
    out = gpu.view(sads, "i4", blocks * search * search)
    out[:] = sad_reference(cur, ref, search).ravel()


#: ~3 ops per pixel per search offset.
SAD_KERNEL = Kernel(
    "sad",
    _sad_fn,
    cost=lambda current, reference, sads, width, height, search: (
        3 * width * height * search * search,
        2 * width * height + 4 * (width // 16) * (height // 16) * search ** 2,
    ),
    writes=("sads",),
)


class SumAbsoluteDifferences(Workload):
    name = "sad"
    description = "full-pixel motion estimation SADs for H.264 encoding"

    CURRENT_FILE = "sad-current.yuv"
    REFERENCE_FILE = "sad-reference.yuv"
    OUTPUT = "sad-table.out"

    def __init__(self, width=512, height=512, search=8, seed=7):
        super().__init__(seed=seed)
        if width % MACROBLOCK or height % MACROBLOCK:
            raise ValueError("frame dimensions must be multiples of 16")
        self.width = width
        self.height = height
        self.search = search
        def build():
            rng = np.random.default_rng(seed)
            current = rng.integers(0, 256, size=(height, width), dtype=np.uint8)
            reference_frame = np.clip(
                current.astype(np.int16)
                + rng.integers(-12, 13, size=(height, width)),
                0,
                255,
            ).astype(np.uint8)
            return current, reference_frame

        self.current, self.reference_frame = memoized_input(
            ("sad", width, height, seed), build
        )

    @property
    def frame_bytes(self):
        return self.width * self.height

    @property
    def sads_bytes(self):
        blocks = (self.width // MACROBLOCK) * (self.height // MACROBLOCK)
        return 4 * blocks * self.search ** 2

    def prepare(self, app):
        app.fs.create(self.CURRENT_FILE, self.current.tobytes())
        app.fs.create(self.REFERENCE_FILE, self.reference_frame.tobytes())

    def reference(self):
        table = sad_reference(self.current, self.reference_frame, self.search)
        return {self.OUTPUT: table.ravel()}

    def _output(self, app):
        raw = app.fs.data_of(self.OUTPUT)
        return {self.OUTPUT: np.frombuffer(raw, dtype=np.int32)}

    def _kernel_args(self, current, reference, sads):
        return dict(
            current=current,
            reference=reference,
            sads=sads,
            width=self.width,
            height=self.height,
            search=self.search,
        )

    def run_cuda(self, app):
        cuda = app.cuda()
        host_cur = app.process.malloc(self.frame_bytes)
        host_ref = app.process.malloc(self.frame_bytes)
        host_sads = app.process.malloc(self.sads_bytes)
        dev_cur = cuda.cuda_malloc(self.frame_bytes)
        dev_ref = cuda.cuda_malloc(self.frame_bytes)
        dev_sads = cuda.cuda_malloc(self.sads_bytes)
        with app.fs.open(self.CURRENT_FILE) as handle:
            app.libc.read(handle, int(host_cur), self.frame_bytes)
        with app.fs.open(self.REFERENCE_FILE) as handle:
            app.libc.read(handle, int(host_ref), self.frame_bytes)
        cuda.cuda_memcpy_h2d(dev_cur, host_cur, self.frame_bytes)
        cuda.cuda_memcpy_h2d(dev_ref, host_ref, self.frame_bytes)
        cuda.launch(SAD_KERNEL, **self._kernel_args(dev_cur, dev_ref, dev_sads))
        cuda.cuda_thread_synchronize()
        cuda.cuda_memcpy_d2h(host_sads, dev_sads, self.sads_bytes)
        with app.fs.open(self.OUTPUT, "w") as handle:
            app.libc.write(handle, int(host_sads), self.sads_bytes)
        return self._output(app)

    def run_gmac(self, app, gmac):
        current = gmac.alloc(self.frame_bytes, name="current")
        reference = gmac.alloc(self.frame_bytes, name="reference")
        sads = gmac.alloc(self.sads_bytes, name="sads")
        with app.fs.open(self.CURRENT_FILE) as handle:
            app.libc.read(handle, int(current), self.frame_bytes)
        with app.fs.open(self.REFERENCE_FILE) as handle:
            app.libc.read(handle, int(reference), self.frame_bytes)
        gmac.call(SAD_KERNEL, **self._kernel_args(current, reference, sads))
        gmac.sync()
        with app.fs.open(self.OUTPUT, "w") as handle:
            app.libc.write(handle, int(sads), self.sads_bytes)
        return self._output(app)
