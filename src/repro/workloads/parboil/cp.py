"""cp — Coulombic Potential (Table 2).

"Computes the coulombic potential at each grid point over one plane in a 3D
grid in which point charges have been randomly distributed."  The CPU
generates the atom array, the accelerator evaluates the potential over a
2D plane, and the result plane is written to disk.

Scaling: 256x256 grid plane, 192 atoms (the original uses larger grids;
the access pattern — small CPU-produced input, device-resident output
dumped once — is what Figures 7/8/10 depend on).
"""

import numpy as np

from repro.analysis.contracts import access_modes
from repro.cuda import backend
from repro.cuda.kernels import Kernel
from repro.workloads.base import Workload, ValueMemo, memoized_input

CPU_STREAM_RATE = 2.0e9


#: Memoized read-only coordinate planes: every evaluation of one grid
#: configuration rebuilds the identical mgrid, so cache it (marked
#: read-only against accidental in-place use).
_PLANE_CACHE = {}


def _plane_coords(grid_n, spacing):
    key = (grid_n, float(spacing))
    cached = _PLANE_CACHE.get(key)
    if cached is None:
        ys, xs = (
            np.mgrid[0:grid_n, 0:grid_n].astype(np.float32)
            * np.float32(spacing)
        )
        xs.setflags(write=False)
        ys.setflags(write=False)
        cached = (ys, xs)
        _PLANE_CACHE[key] = cached
    return cached


def _build_compiled_coulomb(numba):
    """Compiled potential plane (REPRO_KERNEL_BACKEND=numba).

    Same float32 operation chain and the same atom-major accumulation
    order per grid point as the numpy path; reference and simulated
    kernel both flow through :func:`coulomb_reference`, so within one
    process both see the same arithmetic.
    """
    floor = np.float32(1e-3)

    @numba.njit(cache=True)
    def coulomb(atoms, xs, ys, out):
        for row in range(out.shape[0]):
            for col in range(out.shape[1]):
                total = np.float32(0.0)
                for a in range(atoms.shape[0]):
                    dx = xs[row, col] - atoms[a, 0]
                    dy = ys[row, col] - atoms[a, 1]
                    z = atoms[a, 2]
                    distance = np.sqrt(dx * dx + dy * dy + z * z)
                    if distance < floor:
                        distance = floor
                    total += atoms[a, 3] / distance
                out[row, col] = total

    return coulomb


def coulomb_reference(atoms, grid_n, spacing):
    """Potential of ``atoms`` (x, y, z, q rows) over the z=0 plane."""
    ys, xs = _plane_coords(grid_n, spacing)
    compiled = backend.compiled("cp-coulomb", _build_compiled_coulomb)
    if compiled is not None:
        potential = np.empty((grid_n, grid_n), dtype=np.float32)
        compiled(
            np.ascontiguousarray(atoms, dtype=np.float32), xs, ys, potential
        )
        return potential
    potential = np.zeros((grid_n, grid_n), dtype=np.float32)
    for x, y, z, q in atoms:
        distance = np.sqrt((xs - x) ** 2 + (ys - y) ** 2 + z * z)
        potential += q / np.maximum(distance, np.float32(1e-3))
    return potential


_POTENTIAL_MEMO = ValueMemo()


def _cp_fn(gpu, atoms, grid, n_atoms, grid_n, spacing):
    atom_rows = gpu.view(atoms, "f4", 4 * n_atoms).reshape(n_atoms, 4)
    plane = gpu.view(grid, "f4", grid_n * grid_n).reshape(grid_n, grid_n)
    key = (n_atoms, grid_n, float(spacing))
    cached = _POTENTIAL_MEMO.lookup(key, (atom_rows,))
    if cached is None:
        cached = _POTENTIAL_MEMO.store(
            key, (atom_rows,),
            (coulomb_reference(atom_rows, grid_n, spacing),),
        )
    plane[:] = cached[0]


def _cp_batched(gpu, launches):
    """Per-launch replay (cp launches once per run; batches are length 1)."""
    for args in launches:
        _cp_fn(gpu, **args)


#: ~40 flops per (grid point, atom) pair (distance, rsqrt, accumulate).
CP_KERNEL = Kernel(
    "cp",
    _cp_fn,
    cost=lambda atoms, grid, n_atoms, grid_n, spacing: (
        40 * n_atoms * grid_n * grid_n,
        4 * grid_n * grid_n,
    ),
    writes=("grid",),
    batched_fn=_cp_batched,
)


@access_modes(atoms="ro", grid="wo")
class CoulombicPotential(Workload):
    name = "cp"
    description = "coulombic potential over one plane of a 3D grid"

    def __init__(self, grid_n=256, n_atoms=512, spacing=0.05, seed=7):
        super().__init__(seed=seed)
        self.grid_n = grid_n
        self.n_atoms = n_atoms
        self.spacing = spacing
        def build():
            rng = np.random.default_rng(seed)
            atoms = rng.random((n_atoms, 4)).astype(np.float32)
            atoms[:, :3] *= grid_n * spacing
            atoms[:, 3] = atoms[:, 3] * 2.0 - 1.0  # charges in [-1, 1)
            return atoms

        self.atoms = memoized_input(
            ("cp", grid_n, n_atoms, spacing, seed), build
        )

    @property
    def atoms_bytes(self):
        return 16 * self.n_atoms

    @property
    def grid_bytes(self):
        return 4 * self.grid_n ** 2

    OUTPUT = "cp-potential.out"

    def reference(self):
        return {
            self.OUTPUT: coulomb_reference(self.atoms, self.grid_n, self.spacing)
        }

    def _output(self, app):
        raw = app.fs.data_of(self.OUTPUT)
        return {
            self.OUTPUT: np.frombuffer(raw, dtype=np.float32).reshape(
                self.grid_n, self.grid_n
            )
        }

    def _kernel_args(self, atoms, grid):
        return dict(
            atoms=atoms,
            grid=grid,
            n_atoms=self.n_atoms,
            grid_n=self.grid_n,
            spacing=self.spacing,
        )

    def run_cuda(self, app):
        cuda = app.cuda()
        host_atoms = app.process.malloc(self.atoms_bytes)
        host_grid = app.process.malloc(self.grid_bytes)
        dev_atoms = cuda.cuda_malloc(self.atoms_bytes)
        dev_grid = cuda.cuda_malloc(self.grid_bytes)
        host_atoms.write_array(self.atoms)
        app.machine.cpu.stream(self.atoms_bytes, CPU_STREAM_RATE, label="atoms")
        cuda.cuda_memcpy_h2d(dev_atoms, host_atoms, self.atoms_bytes)
        cuda.launch(CP_KERNEL, **self._kernel_args(dev_atoms, dev_grid))
        cuda.cuda_thread_synchronize()
        cuda.cuda_memcpy_d2h(host_grid, dev_grid, self.grid_bytes)
        with app.fs.open(self.OUTPUT, "w") as handle:
            app.libc.write(handle, int(host_grid), self.grid_bytes)
        return self._output(app)

    def run_gmac(self, app, gmac):
        atoms = gmac.alloc(self.atoms_bytes, name="atoms")
        grid = gmac.alloc(self.grid_bytes, name="grid")
        atoms.write_array(self.atoms)
        app.machine.cpu.stream(self.atoms_bytes, CPU_STREAM_RATE, label="atoms")
        gmac.call(CP_KERNEL, **self._kernel_args(atoms, grid))
        gmac.sync()
        with app.fs.open(self.OUTPUT, "w") as handle:
            app.libc.write(handle, int(grid), self.grid_bytes)
        return self._output(app)
