"""tpacf — Two Point Angular Correlation Function (Table 2).

"TPACF is an equation used here as a way to measure the probability of
finding an astronomical body at a given angular distance from another."
The benchmark matters twice in the evaluation:

* in Figures 7/8/10 as a GPU-heavy workload with a modest CPU phase, and
* in **Figure 12** as the pathological case for small rolling sizes:
  "The tpacf code initializes shared data structures in several passes.
  Hence, memory blocks of shared objects are written only once by the CPU
  before their state is set to read-only and they are transferred to
  accelerator memory" — so with a small rolling size the input is
  continuously re-transferred until blocks are large enough to be
  overwritten by all passes before eviction, and the time drops abruptly
  once the data set fits in the rolling size.

The initialisation here works in **tiles** of :data:`TILE_BYTES`, applying
:data:`PASSES` read-modify-write passes to each tile before moving on; the
rolling-size-dependent thrashing then emerges from the protocol itself.
"""

import numpy as np

from repro.util.units import MB
from repro.analysis.contracts import access_modes
from repro.cuda import backend
from repro.cuda.kernels import Kernel
from repro.workloads.base import Workload, ValueMemo, memoized_input

CPU_STREAM_RATE = 4.0e9

#: Initialisation tile: the Figure 12 critical block size is TILE/R —
#: 1MB for rolling size 1, 512KB for rolling size 2 (the paper's testbed
#: observed 4MB/2MB with its larger inputs; the ratio is what matters).
#: The default adaptive rolling size (2 allocations x 2 = 4 blocks of
#: 256KB) exactly covers one tile, so the default configuration does not
#: thrash — matching tpacf's ~1.0x in Figure 7.
TILE_BYTES = 1 * MB

#: Number of initialisation passes over each tile.
PASSES = 4

#: Angular histogram bins.
BINS = 64

#: Kernel subset stride (the simulated kernel histograms every Nth body;
#: the cost model charges the full correlation work).
SUBSET_STRIDE = 768

#: Abstract work units per body for the pairwise correlation.
WORK_PER_POINT = 8000


def init_pass(rows, pass_index):
    """One initialisation pass over an (n, 4) float32 tile, in place."""
    if pass_index == 0:
        return  # pass 0 wrote the raw values
    if pass_index == 1:
        rows[:, :3] = rows[:, :3] * np.float32(2.0) - np.float32(1.0)
    elif pass_index == 2:
        norms = np.sqrt((rows[:, :3] ** 2).sum(axis=1, keepdims=True))
        rows[:, :3] /= np.maximum(norms, np.float32(1e-6))
    elif pass_index == 3:
        rows[:, 3] = np.float32(1.0)
    else:
        raise ValueError(f"no pass {pass_index}")


def _build_compiled_histogram(numba):
    """Compiled pairwise angular histogram (REPRO_KERNEL_BACKEND=numba).

    The CUDA-shaped formulation: one pass over the upper triangle with no
    materialized (n, n) matrices.  Both the simulated kernel and the
    verification oracle call :func:`angular_histogram`, so within one
    process (= one backend) they bin identically.
    """
    import math

    @numba.njit(cache=True)
    def pair_histogram(subset, out):
        n = subset.shape[0]
        scale = out.shape[0] / math.pi
        top = out.shape[0] - 1
        for i in range(n):
            for j in range(i + 1, n):
                dot = (
                    subset[i, 0] * subset[j, 0]
                    + subset[i, 1] * subset[j, 1]
                    + subset[i, 2] * subset[j, 2]
                )
                if dot > 1.0:
                    dot = 1.0
                elif dot < -1.0:
                    dot = -1.0
                index = int(math.acos(dot) * scale)
                if index > top:
                    index = top
                elif index < 0:
                    index = 0
                out[index] += 1
        return out

    return pair_histogram


def angular_histogram(rows):
    """Histogram of pairwise angular separations over the kernel subset."""
    subset = rows[::SUBSET_STRIDE, :3].astype(np.float64)
    compiled = backend.compiled("tpacf-histogram", _build_compiled_histogram)
    if compiled is not None:
        return compiled(subset, np.zeros(BINS, dtype=np.int64))
    dots = np.clip(subset @ subset.T, -1.0, 1.0)
    upper = np.triu_indices(len(subset), k=1)
    angles = np.arccos(dots[upper])
    histogram, _ = np.histogram(angles, bins=BINS, range=(0.0, np.pi))
    return histogram.astype(np.int64)


_HISTOGRAM_MEMO = ValueMemo()


def _tpacf_fn(gpu, points, bins, n_points):
    rows = gpu.view(points, "f4", 4 * n_points).reshape(n_points, 4)
    cached = _HISTOGRAM_MEMO.lookup(n_points, (rows,))
    if cached is None:
        cached = _HISTOGRAM_MEMO.store(
            n_points, (rows,), (angular_histogram(rows),)
        )
    gpu.view(bins, "i8", BINS)[:] = cached[0]


def _tpacf_batched(gpu, launches):
    """Per-launch replay (tpacf launches once per run)."""
    for args in launches:
        _tpacf_fn(gpu, **args)


TPACF_KERNEL = Kernel(
    "tpacf",
    _tpacf_fn,
    cost=lambda points, bins, n_points: (
        WORK_PER_POINT * n_points,
        16 * n_points,
    ),
    writes=("bins",),
    batched_fn=_tpacf_batched,
)


@access_modes(points="ro", bins="wo")
class Tpacf(Workload):
    name = "tpacf"
    description = "two-point angular correlation with multi-pass CPU init"

    OUTPUT = "tpacf-histogram.out"

    def __init__(self, n_points=524288, seed=7):
        super().__init__(seed=seed)
        self.n_points = n_points
        self.raw = memoized_input(
            ("tpacf", n_points, seed),
            lambda: np.random.default_rng(seed)
            .random((n_points, 4))
            .astype(np.float32),
        )

    @property
    def points_bytes(self):
        return 16 * self.n_points

    @property
    def bins_bytes(self):
        return 8 * BINS

    def _init_snapshots(self):
        """Point rows after each initialisation pass, computed once.

        The per-pass values are a pure function of the raw input, while a
        figure sweep runs the same configuration dozens of times (Figure
        12 sweeps rolling sizes alone); memoizing the snapshots lets every
        run *write* the identical per-pass bytes without recomputing them
        — the stores (and hence all protocol traffic) are unchanged.
        """
        def build():
            snapshots = []
            rows = self.raw.copy()
            for pass_index in range(PASSES):
                init_pass(rows, pass_index)
                snapshots.append(rows.copy())
            return tuple(snapshots)

        return memoized_input(
            ("tpacf-init", self.n_points, self.seed), build
        )

    def _initialized_points(self):
        return self._init_snapshots()[-1]

    def reference(self):
        return {self.OUTPUT: angular_histogram(self._initialized_points())}

    def _output(self, app):
        raw = app.fs.data_of(self.OUTPUT)
        return {self.OUTPUT: np.frombuffer(raw, dtype=np.int64)}

    def _tiled_init(self, app, ptr):
        """Initialise the point set tile by tile, PASSES passes per tile.

        Every pass rewrites the tile through plain CPU stores; under
        rolling-update each rewrite of an already-evicted block re-dirties
        and eventually re-transfers it — the Figure 12 mechanism.
        """
        row_bytes = 16
        rows_per_tile = TILE_BYTES // row_bytes
        snapshots = self._init_snapshots()
        for start in range(0, self.n_points, rows_per_tile):
            stop = min(start + rows_per_tile, self.n_points)
            for pass_index in range(PASSES):
                tile = snapshots[pass_index][start:stop]
                ptr.write_array(tile, offset=row_bytes * start)
                app.machine.cpu.stream(
                    tile.nbytes, CPU_STREAM_RATE, label=f"pass{pass_index}"
                )

    def run_cuda(self, app):
        cuda = app.cuda()
        host_points = app.process.malloc(self.points_bytes)
        host_bins = app.process.malloc(self.bins_bytes)
        dev_points = cuda.cuda_malloc(self.points_bytes)
        dev_bins = cuda.cuda_malloc(self.bins_bytes)
        self._tiled_init(app, host_points)
        cuda.cuda_memcpy_h2d(dev_points, host_points, self.points_bytes)
        cuda.launch(
            TPACF_KERNEL,
            points=dev_points,
            bins=dev_bins,
            n_points=self.n_points,
        )
        cuda.cuda_thread_synchronize()
        cuda.cuda_memcpy_d2h(host_bins, dev_bins, self.bins_bytes)
        with app.fs.open(self.OUTPUT, "w") as handle:
            app.libc.write(handle, int(host_bins), self.bins_bytes)
        return self._output(app)

    def run_gmac(self, app, gmac):
        points = gmac.alloc(self.points_bytes, name="points")
        bins = gmac.alloc(self.bins_bytes, name="bins")
        self._tiled_init(app, points)
        gmac.call(
            TPACF_KERNEL, points=points, bins=bins, n_points=self.n_points
        )
        gmac.sync()
        with app.fs.open(self.OUTPUT, "w") as handle:
            app.libc.write(handle, int(bins), self.bins_bytes)
        return self._output(app)
