"""mri-fhd — MRI reconstruction, image-specific matrix FHd (Table 2).

The benchmark is I/O-read heavy: the k-space sample file is read from disk
straight into shared memory (exercising GMAC's interposed, block-chunked
``read()``), the kernel reduces over all samples per voxel, and the small
FHd vectors are post-processed by the CPU and written back to disk.
Figure 10 singles out mri-fhd (with mri-q) as the benchmarks with "high
levels of I/O read activities" that would benefit from peer DMA.
"""

import numpy as np

from repro.analysis.contracts import access_modes
from repro.cuda.kernels import Kernel
from repro.workloads.base import Workload, ValueMemo, memoized_input
from repro.workloads.parboil.mri_common import (
    KERNEL_SCRATCH,
    fhd_reference,
    make_samples,
    make_voxels,
)

CPU_STREAM_RATE = 2.0e9

_FHD_MEMO = ValueMemo()


def _fhd_fn(gpu, samples, voxels, r_out, i_out, n_samples, n_voxels):
    rows = gpu.view(samples, "f4", 5 * n_samples).reshape(n_samples, 5)
    coords = gpu.view(voxels, "f4", 3 * n_voxels).reshape(n_voxels, 3)
    inputs = (rows, coords)
    cached = _FHD_MEMO.lookup((n_samples, n_voxels), inputs)
    if cached is None:
        cached = _FHD_MEMO.store(
            (n_samples, n_voxels), inputs,
            fhd_reference(rows[:, :3], rows[:, 3], rows[:, 4], coords,
                          scratch=KERNEL_SCRATCH),
        )
    r_fhd, i_fhd = cached
    gpu.view(r_out, "f4", n_voxels)[:] = r_fhd
    gpu.view(i_out, "f4", n_voxels)[:] = i_fhd


def _fhd_batched(gpu, launches):
    """Per-launch replay through the shared phase-grid scratch."""
    for args in launches:
        _fhd_fn(gpu, **args)


#: ~14 flops per (sample, voxel) pair (dot product, sincos, 4 MACs).
FHD_KERNEL = Kernel(
    "mri-fhd",
    _fhd_fn,
    cost=lambda samples, voxels, r_out, i_out, n_samples, n_voxels: (
        14 * n_samples * n_voxels,
        20 * n_samples + 8 * n_voxels,
    ),
    writes=("r_out", "i_out"),
    batched_fn=_fhd_batched,
)


@access_modes(samples="ro", voxels="ro", rFhD="wo", iFhD="wo")
class MriFhd(Workload):
    name = "mri-fhd"
    description = "image-specific matrix FHd for 3D MRI reconstruction"

    SAMPLES_FILE = "mri-fhd-samples.in"
    VOXELS_FILE = "mri-fhd-voxels.in"
    OUTPUT = "mri-fhd.out"

    def __init__(self, n_samples=32768, n_voxels=256, seed=7):
        super().__init__(seed=seed)
        self.n_samples = n_samples
        self.n_voxels = n_voxels
        def build():
            rng = np.random.default_rng(seed)
            return make_samples(rng, n_samples), make_voxels(rng, n_voxels)

        self.samples, self.voxels = memoized_input(
            ("mrifhd", n_samples, n_voxels, seed), build
        )

    @property
    def samples_bytes(self):
        return 20 * self.n_samples

    @property
    def voxels_bytes(self):
        return 12 * self.n_voxels

    def prepare(self, app):
        app.fs.create(self.SAMPLES_FILE, self.samples.tobytes())
        app.fs.create(self.VOXELS_FILE, self.voxels.tobytes())

    def reference(self):
        r_fhd, i_fhd = fhd_reference(
            self.samples[:, :3], self.samples[:, 3], self.samples[:, 4],
            self.voxels,
        )
        return {self.OUTPUT: np.concatenate([r_fhd, i_fhd])}

    def _output(self, app):
        raw = app.fs.data_of(self.OUTPUT)
        return {self.OUTPUT: np.frombuffer(raw, dtype=np.float32)}

    def _kernel_args(self, samples, voxels, r_out, i_out):
        return dict(
            samples=samples,
            voxels=voxels,
            r_out=r_out,
            i_out=i_out,
            n_samples=self.n_samples,
            n_voxels=self.n_voxels,
        )

    def run_cuda(self, app):
        cuda = app.cuda()
        out_bytes = 4 * self.n_voxels
        host_samples = app.process.malloc(self.samples_bytes)
        host_voxels = app.process.malloc(self.voxels_bytes)
        host_out = app.process.malloc(2 * out_bytes)
        dev = {
            name: cuda.cuda_malloc(size)
            for name, size in (
                ("samples", self.samples_bytes),
                ("voxels", self.voxels_bytes),
                ("r", out_bytes),
                ("i", out_bytes),
            )
        }
        with app.fs.open(self.SAMPLES_FILE) as handle:
            app.libc.read(handle, int(host_samples), self.samples_bytes)
        with app.fs.open(self.VOXELS_FILE) as handle:
            app.libc.read(handle, int(host_voxels), self.voxels_bytes)
        cuda.cuda_memcpy_h2d(dev["samples"], host_samples, self.samples_bytes)
        cuda.cuda_memcpy_h2d(dev["voxels"], host_voxels, self.voxels_bytes)
        cuda.launch(
            FHD_KERNEL,
            **self._kernel_args(dev["samples"], dev["voxels"], dev["r"], dev["i"]),
        )
        cuda.cuda_thread_synchronize()
        cuda.cuda_memcpy_d2h(host_out, dev["r"], out_bytes)
        cuda.cuda_memcpy_d2h(host_out + out_bytes, dev["i"], out_bytes)
        app.machine.cpu.stream(2 * out_bytes, CPU_STREAM_RATE, label="post")
        with app.fs.open(self.OUTPUT, "w") as handle:
            app.libc.write(handle, int(host_out), 2 * out_bytes)
        return self._output(app)

    def run_gmac(self, app, gmac):
        out_bytes = 4 * self.n_voxels
        samples = gmac.alloc(self.samples_bytes, name="samples")
        voxels = gmac.alloc(self.voxels_bytes, name="voxels")
        r_out = gmac.alloc(out_bytes, name="rFhD")
        i_out = gmac.alloc(out_bytes, name="iFhD")
        # read() straight into shared memory: the paper's peer-DMA use case.
        with app.fs.open(self.SAMPLES_FILE) as handle:
            app.libc.read(handle, int(samples), self.samples_bytes)
        with app.fs.open(self.VOXELS_FILE) as handle:
            app.libc.read(handle, int(voxels), self.voxels_bytes)
        gmac.call(FHD_KERNEL, **self._kernel_args(samples, voxels, r_out, i_out))
        gmac.sync()
        app.machine.cpu.stream(2 * out_bytes, CPU_STREAM_RATE, label="post")
        with app.fs.open(self.OUTPUT, "w") as handle:
            app.libc.write(handle, int(r_out), out_bytes)
        with app.fs.open(self.OUTPUT, "a") as handle:
            app.libc.write(handle, int(i_out), out_bytes)
        return self._output(app)
