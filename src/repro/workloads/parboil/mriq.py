"""mri-q — MRI reconstruction, scanner-configuration matrix Q (Table 2).

Like mri-fhd the input comes from disk, but the output (the Q matrix over
all voxels) is large and the CPU only post-processes a *prefix* of it.
Rolling-update then fetches just the touched blocks, while lazy-update
transfers the whole object on first touch — the fine-grained-sharing win
Figure 8 shows for mri-q ("fine-grained handling of shared objects in
rolling-update avoids some unnecessary data transfers").
"""

import numpy as np

from repro.analysis.contracts import access_modes
from repro.cuda.kernels import Kernel
from repro.workloads.base import Workload, ValueMemo, memoized_input
from repro.workloads.parboil.mri_common import (
    KERNEL_SCRATCH,
    q_reference,
    make_voxels,
)

CPU_STREAM_RATE = 2.0e9

_Q_MEMO = ValueMemo()


def _q_fn(gpu, k_coords, phi_mag, voxels, q_out, n_samples, n_voxels):
    coords_k = gpu.view(k_coords, "f4", 3 * n_samples).reshape(n_samples, 3)
    magnitude = gpu.view(phi_mag, "f4", n_samples)
    coords_v = gpu.view(voxels, "f4", 3 * n_voxels).reshape(n_voxels, 3)
    inputs = (coords_k, magnitude, coords_v)
    cached = _Q_MEMO.lookup((n_samples, n_voxels), inputs)
    if cached is None:
        cached = _Q_MEMO.store(
            (n_samples, n_voxels), inputs,
            q_reference(coords_k, magnitude, coords_v,
                        scratch=KERNEL_SCRATCH),
        )
    r_q, i_q = cached
    out = gpu.view(q_out, "f4", 2 * n_voxels)
    out[:n_voxels] = r_q
    out[n_voxels:] = i_q


def _q_batched(gpu, launches):
    """Per-launch replay (Q is a one-shot kernel; batches are length 1).

    The batched form still pays off: it routes every deferred evaluation
    through the shared phase-grid scratch, and identical back-to-back
    launches keep the single-pass semantics of replaying each in order.
    """
    for args in launches:
        _q_fn(gpu, **args)


#: ~12 flops per (sample, voxel) pair.
Q_KERNEL = Kernel(
    "mri-q",
    _q_fn,
    cost=lambda k_coords, phi_mag, voxels, q_out, n_samples, n_voxels: (
        12 * n_samples * n_voxels,
        16 * n_samples + 8 * n_voxels,
    ),
    writes=("q_out",),
    batched_fn=_q_batched,
)


@access_modes(**{"k-coords": "ro", "phi-mag": "ro", "voxels": "ro",
                 "Q": "wo", "out": "none"})
class MriQ(Workload):
    name = "mri-q"
    description = "scanner-configuration matrix Q for 3D MRI reconstruction"

    TRAJECTORY_FILE = "mri-q-trajectory.in"
    VOXELS_FILE = "mri-q-voxels.in"
    OUTPUT = "mri-q.out"

    def __init__(self, n_samples=256, n_voxels=65536, read_fraction=0.25,
                 seed=7):
        super().__init__(seed=seed)
        self.n_samples = n_samples
        self.n_voxels = n_voxels
        self.read_fraction = read_fraction
        def build():
            rng = np.random.default_rng(seed)
            k_coords = make_voxels(rng, n_samples)  # same row layout
            phi_mag = rng.random(n_samples).astype(np.float32)
            voxels = make_voxels(rng, n_voxels)
            return k_coords, phi_mag, voxels

        self.k_coords, self.phi_mag, self.voxels = memoized_input(
            ("mriq", n_samples, n_voxels, seed), build
        )

    @property
    def trajectory_bytes(self):
        return 16 * self.n_samples  # 3 coords + magnitude per sample

    @property
    def voxels_bytes(self):
        return 12 * self.n_voxels

    @property
    def q_bytes(self):
        return 8 * self.n_voxels

    @property
    def _prefix_voxels(self):
        return int(self.n_voxels * self.read_fraction)

    def prepare(self, app):
        trajectory = np.hstack([self.k_coords, self.phi_mag[:, None]])
        app.fs.create(self.TRAJECTORY_FILE, trajectory.astype("f4").tobytes())
        app.fs.create(self.VOXELS_FILE, self.voxels.tobytes())

    def reference(self):
        r_q, _ = q_reference(self.k_coords, self.phi_mag, self.voxels)
        prefix = self._prefix_voxels
        return {self.OUTPUT: np.abs(r_q[:prefix])}

    def _output(self, app):
        raw = app.fs.data_of(self.OUTPUT)
        return {self.OUTPUT: np.frombuffer(raw, dtype=np.float32)}

    def _kernel_args(self, k_coords, phi_mag, voxels, q_out):
        return dict(
            k_coords=k_coords,
            phi_mag=phi_mag,
            voxels=voxels,
            q_out=q_out,
            n_samples=self.n_samples,
            n_voxels=self.n_voxels,
        )

    def _post_process(self, app, raw_prefix):
        """CPU phase: magnitude of the real part over the output prefix."""
        values = np.abs(np.frombuffer(raw_prefix, dtype=np.float32))
        app.machine.cpu.stream(len(raw_prefix), CPU_STREAM_RATE, label="post")
        return values.astype(np.float32)

    def run_cuda(self, app):
        cuda = app.cuda()
        prefix_bytes = 4 * self._prefix_voxels
        host_traj = app.process.malloc(self.trajectory_bytes)
        host_voxels = app.process.malloc(self.voxels_bytes)
        host_q = app.process.malloc(self.q_bytes)
        host_out = app.process.malloc(prefix_bytes)
        dev_k = cuda.cuda_malloc(12 * self.n_samples)
        dev_mag = cuda.cuda_malloc(4 * self.n_samples)
        dev_voxels = cuda.cuda_malloc(self.voxels_bytes)
        dev_q = cuda.cuda_malloc(self.q_bytes)
        with app.fs.open(self.TRAJECTORY_FILE) as handle:
            app.libc.read(handle, int(host_traj), self.trajectory_bytes)
        with app.fs.open(self.VOXELS_FILE) as handle:
            app.libc.read(handle, int(host_voxels), self.voxels_bytes)
        rows = host_traj.read_array("f4", 4 * self.n_samples).reshape(-1, 4)
        scratch = app.process.malloc(self.trajectory_bytes)
        scratch.write_array(np.ascontiguousarray(rows[:, :3]))
        cuda.cuda_memcpy_h2d(dev_k, scratch, 12 * self.n_samples)
        scratch.write_array(np.ascontiguousarray(rows[:, 3]))
        cuda.cuda_memcpy_h2d(dev_mag, scratch, 4 * self.n_samples)
        cuda.cuda_memcpy_h2d(dev_voxels, host_voxels, self.voxels_bytes)
        cuda.launch(
            Q_KERNEL, **self._kernel_args(dev_k, dev_mag, dev_voxels, dev_q)
        )
        cuda.cuda_thread_synchronize()
        # The hand-tuned version is conservative: it copies the whole Q
        # matrix back even though only a prefix is post-processed.
        cuda.cuda_memcpy_d2h(host_q, dev_q, self.q_bytes)
        processed = self._post_process(app, host_q.read_bytes(prefix_bytes))
        host_out.write_array(processed)
        with app.fs.open(self.OUTPUT, "w") as handle:
            app.libc.write(handle, int(host_out), prefix_bytes)
        return self._output(app)

    def run_gmac(self, app, gmac):
        prefix_bytes = 4 * self._prefix_voxels
        k_coords = gmac.alloc(12 * self.n_samples, name="k-coords")
        phi_mag = gmac.alloc(4 * self.n_samples, name="phi-mag")
        voxels = gmac.alloc(self.voxels_bytes, name="voxels")
        q_out = gmac.alloc(self.q_bytes, name="Q")
        out = gmac.alloc(prefix_bytes, name="out")
        scratch = app.process.malloc(self.trajectory_bytes)
        with app.fs.open(self.TRAJECTORY_FILE) as handle:
            app.libc.read(handle, int(scratch), self.trajectory_bytes)
        rows = scratch.read_array("f4", 4 * self.n_samples).reshape(-1, 4)
        k_coords.write_array(np.ascontiguousarray(rows[:, :3]))
        phi_mag.write_array(np.ascontiguousarray(rows[:, 3]))
        with app.fs.open(self.VOXELS_FILE) as handle:
            app.libc.read(handle, int(voxels), self.voxels_bytes)
        gmac.call(Q_KERNEL, **self._kernel_args(k_coords, phi_mag, voxels, q_out))
        gmac.sync()
        # Only the prefix is touched; rolling-update fetches only its blocks.
        processed = self._post_process(app, q_out.read_bytes(prefix_bytes))
        out.write_array(processed)
        with app.fs.open(self.OUTPUT, "w") as handle:
            app.libc.write(handle, int(out), prefix_bytes)
        return self._output(app)
