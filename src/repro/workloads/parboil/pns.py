"""pns — Petri Net Simulation (Table 2).

The structure that matters for Figure 7: two large device-resident objects
(the marking vector and the transition structure) that the CPU writes once
and then never touches, iterated over by *many* kernel calls, with a small
statistics object the CPU samples occasionally.  The hand-tuned CUDA code
performs no per-iteration transfers at all; lazy- and rolling-update match
it because only the small statistics region ever faults back.  Batch-update
re-transfers both large objects in both directions around every call —
the source of the paper's 65.18x slow-down, the largest in Figure 7.
"""

import numpy as np

from repro.util.units import MB
from repro.analysis.contracts import access_modes
from repro.cuda import backend
from repro.cuda.kernels import Kernel
from repro.workloads.base import Workload, ValueMemo, memoized_input

CPU_STREAM_RATE = 4.0e9

#: Deterministic update constants for the abstract firing rule.
FIRE_MULTIPLIER = np.int32(1103515245 & 0x7FFF)
FIRE_INCREMENT = np.int32(12345)
TOKEN_LIMIT = np.int32(255)


def fire_step(places, transition_seed, out=None, scratch=None):
    """One synchronous firing round over the marking vector.

    In-place update chain: int32 addition wraps mod 2^32 and is
    associative, so folding the scalar terms and reusing one buffer gives
    bit-identical markings to the naive expression with fewer temporaries
    (this runs once per simulated round on every place).

    ``out`` (the result buffer) and ``scratch`` (the rotation buffer) let
    hot callers reuse allocations across rounds; neither may alias
    ``places``.  Results are bit-identical with or without them.
    """
    rotated = np.empty_like(places) if scratch is None else scratch
    rotated[0] = places[-1]
    rotated[1:] = places[:-1]
    if out is None:
        mixed = places * FIRE_MULTIPLIER
    else:
        mixed = np.multiply(places, FIRE_MULTIPLIER, out=out)
    mixed += rotated
    mixed += FIRE_INCREMENT + transition_seed
    mixed &= 0x7FFFFFFF
    # TOKEN_LIMIT + 1 is a power of two, so the modulo is a mask.
    mixed &= TOKEN_LIMIT
    return mixed


#: Reusable firing-round buffers keyed by marking length: two result
#: buffers (ping-pong across a batched sweep) plus the rotation scratch.
_FIRE_SCRATCH = {}


def _fire_buffers(n_places):
    buffers = _FIRE_SCRATCH.get(n_places)
    if buffers is None:
        buffers = tuple(
            np.empty(n_places, dtype=np.int32) for _ in range(3)
        )
        _FIRE_SCRATCH[n_places] = buffers
    return buffers


def _write_stats(counters, marking, iteration):
    counters[0] = np.int32(iteration + 1)
    counters[1] = np.int32(int(marking[:256].sum()) & 0x7FFFFFFF)
    counters[2] = np.int32(int(marking.max()))


def _pns_fn(gpu, places, transitions, stats, n_places, iteration):
    marking = gpu.view(places, "i4", n_places)
    weights = gpu.view(transitions, "i4", n_places)
    # The transition structure enters the firing rule through a per-round
    # seed; the cost model charges the full streaming traffic.
    seed = np.int32(int(weights[iteration % 1024]) & 0xFFFF)
    out, _, scratch = _fire_buffers(n_places)
    marking[:] = fire_step(marking, seed, out=out, scratch=scratch)
    _write_stats(gpu.view(stats, "i4", 16), marking, iteration)


#: Byte-exact reuse of whole batched sweeps: figure sweeps run the same
#: marking trajectory once per mode/protocol/figure, so each (input
#: marking, seed vector) recurs many times.  Keyed by sweep length so the
#: flush-per-iteration protocols (length-1 sweeps) cannot churn the
#: entries of the deep-queue ones.
_SWEEP_MEMO = ValueMemo(max_entries=12)


def _build_compiled_sweep(numba):
    """Compiled K-round firing sweep (REPRO_KERNEL_BACKEND=numba).

    Bit-identical to iterating :func:`fire_step`: marking values stay in
    [0, 255] after each round (and start below 64), so the int64 products
    peak near 5.2e6 — far from any overflow — and the two masks collapse
    to one ``& 255`` of a non-negative value.  The rotation reads the
    pre-round neighbour through a carried temporary instead of a scratch
    buffer.
    """
    mult = int(FIRE_MULTIPLIER)
    inc = int(FIRE_INCREMENT)
    limit = int(TOKEN_LIMIT)

    @numba.njit(cache=True)
    def sweep(marking, seeds, out):
        n = marking.shape[0]
        for i in range(n):
            out[i] = marking[i]
        for k in range(seeds.shape[0]):
            seed = inc + np.int64(seeds[k])
            previous = np.int64(out[n - 1])
            for i in range(n):
                current = np.int64(out[i])
                out[i] = np.int32((current * mult + previous + seed) & limit)
                previous = current
        return out

    return sweep


def _pns_batched(gpu, launches):
    """K deferred firing rounds in one sweep.

    Seeds for every round are gathered in one vectorized lookup (the
    transition structure is constant across the batch — it is not in
    ``batch_by``, and any host write to it would have flushed the queue),
    the rounds ping-pong between two reused buffers, and only the *final*
    marking and statistics are stored: intermediate device states are
    unobservable between materialization barriers by construction, so the
    resulting device bytes are identical to running ``_pns_fn`` K times
    while skipping K-1 full-vector stat reductions and writebacks.
    """
    first = launches[0]
    n_places = first["n_places"]
    marking = gpu.view(first["places"], "i4", n_places)
    weights = gpu.view(first["transitions"], "i4", n_places)
    iterations = np.asarray(
        [launch["iteration"] for launch in launches], dtype=np.int64
    )
    # Bit-identical to np.int32(int(w) & 0xFFFF) per round: the mask keeps
    # every value non-negative and well inside int32.
    seeds = weights[iterations % 1024] & np.int32(0xFFFF)
    key = (n_places, len(launches))
    inputs = (marking, seeds, iterations)
    cached = _SWEEP_MEMO.lookup(key, inputs)
    if cached is None:
        compiled = backend.compiled("pns-sweep", _build_compiled_sweep)
        if compiled is not None:
            final = compiled(
                marking, seeds, np.empty(n_places, dtype=np.int32)
            )
        else:
            ping, pong, scratch = _fire_buffers(n_places)
            state = marking
            for seed in seeds:
                state = fire_step(state, seed, out=ping, scratch=scratch)
                ping, pong = pong, ping
            # Snapshot before the writeback: ``marking`` still holds the
            # sweep's input (the rounds ping-pong through scratch buffers).
            final = state.copy()
        cached = _SWEEP_MEMO.store(key, inputs, (final,))
    marking[:] = cached[0]
    _write_stats(
        gpu.view(first["stats"], "i4", 16), marking,
        launches[-1]["iteration"],
    )


#: ~8 integer ops per place per round; markings stay in on-chip shared
#: memory, so off-chip traffic is a fraction of the marking size.
PNS_KERNEL = Kernel(
    "pns",
    _pns_fn,
    cost=lambda places, transitions, stats, n_places, iteration: (
        8 * n_places,
        2 * n_places,
    ),
    writes=("places", "stats"),
    batched_fn=_pns_batched,
    batch_by=("iteration",),
)


@access_modes(places="rw", transitions="ro", stats="rw")
class PetriNet(Workload):
    name = "pns"
    description = "generic Petri net simulation, many short kernel calls"

    def __init__(self, n_places=(8 * MB) // 4, iterations=160,
                 sample_interval=16, seed=7):
        super().__init__(seed=seed)
        self.n_places = n_places
        self.iterations = iterations
        self.sample_interval = sample_interval
        def build():
            rng = np.random.default_rng(seed)
            initial = rng.integers(0, 64, size=n_places, dtype=np.int32)
            transitions = rng.integers(
                0, 1 << 16, size=n_places, dtype=np.int32
            )
            return initial, transitions

        self.initial, self.transitions = memoized_input(
            ("pns", n_places, seed), build
        )

    @property
    def places_bytes(self):
        return 4 * self.n_places

    STATS_BYTES = 64

    def _seed_for(self, iteration):
        return np.int32(int(self.transitions[iteration % 1024]) & 0xFFFF)

    def reference(self):
        marking = self.initial.copy()
        samples = []
        for iteration in range(self.iterations):
            marking = fire_step(marking, self._seed_for(iteration))
            if (iteration + 1) % self.sample_interval == 0:
                samples.append(int(marking[:256].sum()) & 0x7FFFFFFF)
        return {
            "samples": np.asarray(samples, dtype=np.int64),
            "final_marking": marking,
        }

    def _sample(self, app, raw_stats):
        counters = np.frombuffer(raw_stats, dtype=np.int32)
        app.machine.cpu.stream(
            self.STATS_BYTES, CPU_STREAM_RATE, label="sample"
        )
        return int(counters[1])

    def run_cuda(self, app):
        cuda = app.cuda()
        host_places = app.process.malloc(self.places_bytes)
        host_stats = app.process.malloc(self.STATS_BYTES)
        dev_places = cuda.cuda_malloc(self.places_bytes)
        dev_transitions = cuda.cuda_malloc(self.places_bytes)
        dev_stats = cuda.cuda_malloc(self.STATS_BYTES)
        host_places.write_array(self.initial)
        app.machine.cpu.stream(self.places_bytes, CPU_STREAM_RATE, label="init")
        cuda.cuda_memcpy_h2d(dev_places, host_places, self.places_bytes)
        host_places.write_array(self.transitions)
        app.machine.cpu.stream(self.places_bytes, CPU_STREAM_RATE, label="init")
        cuda.cuda_memcpy_h2d(dev_transitions, host_places, self.places_bytes)
        samples = []
        for iteration in range(self.iterations):
            cuda.launch(
                PNS_KERNEL,
                places=dev_places,
                transitions=dev_transitions,
                stats=dev_stats,
                n_places=self.n_places,
                iteration=iteration,
            )
            cuda.cuda_thread_synchronize()
            if (iteration + 1) % self.sample_interval == 0:
                cuda.cuda_memcpy_d2h(host_stats, dev_stats, self.STATS_BYTES)
                samples.append(
                    self._sample(app, host_stats.read_bytes(self.STATS_BYTES))
                )
        cuda.cuda_thread_synchronize()
        cuda.cuda_memcpy_d2h(host_places, dev_places, self.places_bytes)
        final = host_places.read_array("i4", self.n_places)
        return {
            "samples": np.asarray(samples, dtype=np.int64),
            "final_marking": final,
        }

    def run_gmac(self, app, gmac):
        places = gmac.alloc(self.places_bytes, name="places")
        transitions = gmac.alloc(self.places_bytes, name="transitions")
        stats = gmac.alloc(self.STATS_BYTES, name="stats")
        places.write_array(self.initial)
        app.machine.cpu.stream(self.places_bytes, CPU_STREAM_RATE, label="init")
        transitions.write_array(self.transitions)
        app.machine.cpu.stream(self.places_bytes, CPU_STREAM_RATE, label="init")
        samples = []
        for iteration in range(self.iterations):
            gmac.call(
                PNS_KERNEL,
                places=places,
                transitions=transitions,
                stats=stats,
                n_places=self.n_places,
                iteration=iteration,
            )
            gmac.sync()
            if (iteration + 1) % self.sample_interval == 0:
                samples.append(
                    self._sample(app, stats.read_bytes(self.STATS_BYTES))
                )
        final = places.read_array("i4", self.n_places)
        return {
            "samples": np.asarray(samples, dtype=np.int64),
            "final_marking": final,
        }
