"""The Parboil-like benchmark suite (Table 2 of the paper).

Seven workloads with the same structure as the Parboil originals the paper
evaluates: the I/O mix, kernel-call counts and CPU access patterns that
drive Figures 7, 8, 10 and 12 — scaled to simulator-friendly sizes (each
class documents its scaling).  Every benchmark has a CUDA-style and a GMAC
variant plus a numpy oracle (see :mod:`repro.workloads.base`).
"""

from repro.workloads.parboil.cp import CoulombicPotential
from repro.workloads.parboil.mrifhd import MriFhd
from repro.workloads.parboil.mriq import MriQ
from repro.workloads.parboil.pns import PetriNet
from repro.workloads.parboil.rpes import RysPolynomial
from repro.workloads.parboil.sad import SumAbsoluteDifferences
from repro.workloads.parboil.tpacf import Tpacf

#: The suite in the paper's figure order.
PARBOIL = {
    "cp": CoulombicPotential,
    "mri-fhd": MriFhd,
    "mri-q": MriQ,
    "pns": PetriNet,
    "rpes": RysPolynomial,
    "sad": SumAbsoluteDifferences,
    "tpacf": Tpacf,
}

__all__ = [
    "CoulombicPotential",
    "MriFhd",
    "MriQ",
    "PetriNet",
    "RysPolynomial",
    "SumAbsoluteDifferences",
    "Tpacf",
    "PARBOIL",
]
