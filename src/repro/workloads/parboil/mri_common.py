"""Shared math for the two MRI reconstruction benchmarks (mri-fhd, mri-q).

Both compute sums over k-space samples of sin/cos phase terms against voxel
coordinates in non-Cartesian 3D MRI reconstruction; mri-fhd weights them by
the image-specific data (phiR, phiI), mri-q by the scanner configuration
magnitude (Table 2).
"""

import numpy as np

from repro.cuda import backend

TWO_PI = np.float32(2.0 * np.pi)


class PhaseScratch:
    """Reusable float32 work buffers for the (samples x voxels) phase grid.

    The two MRI kernels allocate three dense (n_samples, n_voxels) arrays
    per evaluation (phase, cos, sin) — the dominant allocation cost of the
    whole hot path.  One scratch object hands out named buffers keyed by
    shape; all operations write with ``out=``, so results stay bit-identical
    to the allocating path.
    """

    def __init__(self):
        self._buffers = {}

    def take(self, name, shape):
        buffer = self._buffers.get((name, shape))
        if buffer is None:
            buffer = np.empty(shape, dtype=np.float32)
            self._buffers[(name, shape)] = buffer
        return buffer


#: Shared scratch for the simulated kernels (the oracle paths allocate
#: fresh arrays: they run once per configuration and are memoized).
KERNEL_SCRATCH = PhaseScratch()


def phase_matrix(k_coords, voxels, out=None):
    """arg[k, v] = 2*pi * (k . x) for sample rows and voxel rows."""
    # copy=False: the inputs are float32 already on every call path; the
    # astype is a dtype guarantee, not a defensive copy (the product
    # writes to ``out`` or allocates fresh output regardless).
    product = np.matmul(
        k_coords.astype(np.float32, copy=False),
        voxels.astype(np.float32, copy=False).T,
        out=out,
    )
    return np.multiply(product, TWO_PI, out=product)


def _build_compiled_phase_terms(numba):
    """Fused phase grid + cos/sin (REPRO_KERNEL_BACKEND=numba).

    One float32 pass per (sample, voxel) cell with no materialized phase
    matrix.  Reference and simulated kernel share :func:`_phase_terms`,
    so within one process both see the same trigonometry.
    """
    two_pi = np.float32(2.0 * np.pi)

    @numba.njit(cache=True)
    def phase_terms(k_coords, voxels, cos_out, sin_out):
        for i in range(k_coords.shape[0]):
            kx = k_coords[i, 0]
            ky = k_coords[i, 1]
            kz = k_coords[i, 2]
            for j in range(voxels.shape[0]):
                arg = two_pi * (
                    kx * voxels[j, 0]
                    + ky * voxels[j, 1]
                    + kz * voxels[j, 2]
                )
                cos_out[i, j] = np.cos(arg)
                sin_out[i, j] = np.sin(arg)

    return phase_terms


def _phase_terms(k_coords, voxels, scratch):
    """(cos(arg), sin(arg)) of the phase grid, via scratch when given."""
    compiled = backend.compiled(
        "mri-phase-terms", _build_compiled_phase_terms
    )
    if compiled is not None:
        shape = (k_coords.shape[0], voxels.shape[0])
        if scratch is None:
            cos_out = np.empty(shape, dtype=np.float32)
            sin_out = np.empty(shape, dtype=np.float32)
        else:
            cos_out = scratch.take("cos", shape)
            sin_out = scratch.take("sin", shape)
        compiled(
            k_coords.astype(np.float32, copy=False),
            voxels.astype(np.float32, copy=False),
            cos_out, sin_out,
        )
        return cos_out, sin_out
    if scratch is None:
        arg = phase_matrix(k_coords, voxels)
        return np.cos(arg), np.sin(arg)
    shape = (k_coords.shape[0], voxels.shape[0])
    arg = phase_matrix(k_coords, voxels, out=scratch.take("arg", shape))
    return (
        np.cos(arg, out=scratch.take("cos", shape)),
        np.sin(arg, out=scratch.take("sin", shape)),
    )


def fhd_reference(k_coords, phi_r, phi_i, voxels, scratch=None):
    """(rFhD, iFhD) per voxel."""
    cos_arg, sin_arg = _phase_terms(k_coords, voxels, scratch)
    r_fhd = phi_r @ cos_arg + phi_i @ sin_arg
    i_fhd = phi_i @ cos_arg - phi_r @ sin_arg
    return (
        r_fhd.astype(np.float32, copy=False),
        i_fhd.astype(np.float32, copy=False),
    )


def q_reference(k_coords, phi_magnitude, voxels, scratch=None):
    """(rQ, iQ) per voxel for the scanner-configuration matrix Q."""
    cos_arg, sin_arg = _phase_terms(k_coords, voxels, scratch)
    r_q = phi_magnitude @ cos_arg
    i_q = phi_magnitude @ sin_arg
    return (
        r_q.astype(np.float32, copy=False),
        i_q.astype(np.float32, copy=False),
    )


def make_samples(rng, count):
    """Random k-space sample rows (kx, ky, kz, phiR, phiI)."""
    samples = rng.random((count, 5)).astype(np.float32)
    samples[:, :3] = samples[:, :3] * 2.0 - 1.0
    return samples


def make_voxels(rng, count):
    """Random voxel coordinate rows (x, y, z)."""
    return (rng.random((count, 3)).astype(np.float32) * 2.0 - 1.0)
