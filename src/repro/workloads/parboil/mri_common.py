"""Shared math for the two MRI reconstruction benchmarks (mri-fhd, mri-q).

Both compute sums over k-space samples of sin/cos phase terms against voxel
coordinates in non-Cartesian 3D MRI reconstruction; mri-fhd weights them by
the image-specific data (phiR, phiI), mri-q by the scanner configuration
magnitude (Table 2).
"""

import numpy as np

TWO_PI = np.float32(2.0 * np.pi)


def phase_matrix(k_coords, voxels):
    """arg[k, v] = 2*pi * (k . x) for sample rows and voxel rows."""
    # copy=False: the inputs are float32 already on every call path; the
    # astype is a dtype guarantee, not a defensive copy (the product
    # allocates fresh output regardless).
    return TWO_PI * (
        k_coords.astype(np.float32, copy=False)
        @ voxels.astype(np.float32, copy=False).T
    )


def fhd_reference(k_coords, phi_r, phi_i, voxels):
    """(rFhD, iFhD) per voxel."""
    arg = phase_matrix(k_coords, voxels)
    cos_arg = np.cos(arg)
    sin_arg = np.sin(arg)
    r_fhd = phi_r @ cos_arg + phi_i @ sin_arg
    i_fhd = phi_i @ cos_arg - phi_r @ sin_arg
    return (
        r_fhd.astype(np.float32, copy=False),
        i_fhd.astype(np.float32, copy=False),
    )


def q_reference(k_coords, phi_magnitude, voxels):
    """(rQ, iQ) per voxel for the scanner-configuration matrix Q."""
    arg = phase_matrix(k_coords, voxels)
    r_q = phi_magnitude @ np.cos(arg)
    i_q = phi_magnitude @ np.sin(arg)
    return (
        r_q.astype(np.float32, copy=False),
        i_q.astype(np.float32, copy=False),
    )


def make_samples(rng, count):
    """Random k-space sample rows (kx, ky, kz, phiR, phiI)."""
    samples = rng.random((count, 5)).astype(np.float32)
    samples[:, :3] = samples[:, :3] * 2.0 - 1.0
    return samples


def make_voxels(rng, count):
    """Random voxel coordinate rows (x, y, z)."""
    return (rng.random((count, 3)).astype(np.float32) * 2.0 - 1.0)
