"""Reproduction of *An Asymmetric Distributed Shared Memory Model for
Heterogeneous Parallel Systems* (Gelado et al., ASPLOS 2010).

The package is layered bottom-up (see DESIGN.md):

* :mod:`repro.util` — intervals, the balanced block-index tree, units,
* :mod:`repro.sim` — virtual time, resource timelines, time accounting,
* :mod:`repro.hw` — CPU/GPU/PCIe/disk models (the Figure 1 machine),
* :mod:`repro.os` — simulated mmap/mprotect/SIGSEGV/files/libc,
* :mod:`repro.cuda` — a CUDA-like driver and runtime API,
* :mod:`repro.core` — **GMAC**, the paper's contribution,
* :mod:`repro.workloads` — Parboil-like benchmarks, 3D-Stencil, vector
  add, and the NPB bandwidth model,
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import reference_system, Application

    machine = reference_system()
    app = Application(machine)
    gmac = app.gmac(protocol="rolling")
    data = gmac.alloc(1 << 20)           # one pointer, both processors
    data.write_array(my_numpy_array)      # plain CPU stores
    gmac.call(my_kernel, data=data, n=n)  # adsmCall
    gmac.sync()                           # adsmSync
    result = data.read_array("f4", n)     # faults data back on demand
"""

from repro.hw.machine import Machine, reference_system, integrated_system
from repro.core.api import Gmac, SharedPtr
from repro.cuda.kernels import Kernel
from repro.cuda.runtime import CudaRuntime
from repro.workloads.base import Application

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "reference_system",
    "integrated_system",
    "Gmac",
    "SharedPtr",
    "Kernel",
    "CudaRuntime",
    "Application",
    "__version__",
]
