"""Experiment registry and dispatch."""

import inspect

from repro.experiments import (
    figure02,
    figure07,
    figure08,
    figure09,
    figure10,
    figure11,
    figure12,
    table02,
    porting,
    motivation,
    ablations,
    chaos,
    contracts,
    failover,
)

#: Experiment id -> module.  Every table and figure in the paper's
#: evaluation appears here (Table 1 is the API itself, asserted by tests).
REGISTRY = {
    "fig2": figure02,
    "tab2": table02,
    "fig7": figure07,
    "fig8": figure08,
    "fig9": figure09,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "porting": porting,
    "motivation": motivation,
    "ablations": ablations,
    "chaos": chaos,
    "contracts": contracts,
    "failover": failover,
}


def run_experiment(experiment_id, quick=False, devices=None):
    """Run one experiment by id; returns its ExperimentResult.

    ``devices`` overrides the accelerator count on experiments that have
    such a knob (currently ``failover``); passing it to one that does not
    is an error rather than a silent no-op.
    """
    if experiment_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(REGISTRY))}"
        )
    module = REGISTRY[experiment_id]
    kwargs = {"quick": quick}
    if devices is not None:
        if "devices" not in inspect.signature(module.run).parameters:
            raise ValueError(
                f"experiment {experiment_id!r} has no device-count knob"
            )
        kwargs["devices"] = devices
    return module.run(**kwargs)
