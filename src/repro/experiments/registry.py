"""Experiment registry and dispatch."""

from repro.experiments import (
    figure02,
    figure07,
    figure08,
    figure09,
    figure10,
    figure11,
    figure12,
    table02,
    porting,
    motivation,
    ablations,
    chaos,
)

#: Experiment id -> module.  Every table and figure in the paper's
#: evaluation appears here (Table 1 is the API itself, asserted by tests).
REGISTRY = {
    "fig2": figure02,
    "tab2": table02,
    "fig7": figure07,
    "fig8": figure08,
    "fig9": figure09,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "porting": porting,
    "motivation": motivation,
    "ablations": ablations,
    "chaos": chaos,
}


def run_experiment(experiment_id, quick=False):
    """Run one experiment by id; returns its ExperimentResult."""
    if experiment_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(REGISTRY))}"
        )
    return REGISTRY[experiment_id].run(quick=quick)
