"""Figure 9 — 3D-Stencil execution time vs volume size and block size.

"As we increase the volume size, rolling-update offers a greater benefit
than lazy-update ... execution times are longer for a memory block size of
32MB than for memory block sizes of 256KB and 1MB."
"""

from repro.util.units import KB, MB, format_size
from repro.experiments.common import run_spec
from repro.experiments.spec import RunSpec
from repro.experiments.result import ExperimentResult

EXPERIMENT_ID = "fig9"
TITLE = "3D-Stencil time across volume sizes, lazy vs rolling block sizes"
PAPER_CLAIM = (
    "rolling beats lazy increasingly with volume size; 32MB blocks lose to "
    "256KB/1MB (source introduction touches one block, disk dumps favour "
    "big blocks)"
)

#: Paper volumes are 64^3..384^3; scaled to simulator-friendly sizes.
VOLUMES = (48, 64, 96, 128)
QUICK_VOLUMES = (32, 48)

BLOCK_SIZES = (4 * KB, 256 * KB, 1 * MB, 32 * MB)


def _spec(n, quick, protocol, options):
    return RunSpec.make(
        workload="stencil3d",
        params=dict(n=n, steps=8 if quick else 20,
                    dump_interval=4 if quick else 10),
        protocol=protocol,
        layer="driver",
        protocol_options=options,
    )


def specs(quick=False):
    """Lazy plus one rolling run per block size, per volume."""
    out = []
    for n in (QUICK_VOLUMES if quick else VOLUMES):
        out.append(_spec(n, quick, "lazy", None))
        for block_size in BLOCK_SIZES:
            out.append(_spec(n, quick, "rolling", {"block_size": block_size}))
    return out


def run(quick=False):
    volumes = QUICK_VOLUMES if quick else VOLUMES
    rows = []
    for n in volumes:
        lazy = run_spec(_spec(n, quick, "lazy", None))
        row = [f"{n}^3", round(lazy.elapsed * 1e3, 2)]
        verified = lazy.verified
        for block_size in BLOCK_SIZES:
            result = run_spec(
                _spec(n, quick, "rolling", {"block_size": block_size})
            )
            verified = verified and result.verified
            row.append(round(result.elapsed * 1e3, 2))
        row.append("yes" if verified else "NO")
        rows.append(row)
    headers = ["volume", "lazy ms"] + [
        f"rolling {format_size(bs)} ms" for bs in BLOCK_SIZES
    ] + ["outputs verified"]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=headers,
        rows=rows,
        notes=["driver abstraction layer (no CUDA initialisation)"],
        chart_spec=("volume", ["lazy ms"] + [
            f"rolling {format_size(bs)} ms" for bs in BLOCK_SIZES
        ]),
    )
