"""Persistent worker pool with a shared-memory result plane.

The legacy fan-out path (``multiprocessing.Pool.map``) pays a fresh fork
per sweep and pickles every :class:`~repro.experiments.spec.SpecOutcome`
back through a pipe.  This engine replaces both costs:

* **workers fork once per executor lifetime** — after the parent has
  pre-warmed the memoized workload inputs and the retained malloc arena,
  so every worker inherits warm pages as copy-on-write and never
  regenerates an input array;
* **outcomes return through shared memory** — each worker owns a
  ``multiprocessing.shared_memory`` slab; it pickles the outcome straight
  into the slab through the :mod:`repro.util.buffers` view machinery and
  sends only a small control message (sequence number, payload size, host
  seconds) on the result queue.  The parent unpickles directly from a
  slab view; outcome bytes never cross a pipe.  An outcome larger than
  the slab falls back to riding the control queue (counted, never wrong);
* **dispatch is parent-driven, one spec at a time** — the executor hands
  this engine a cost-ordered ``(seq, spec)`` list (longest expected
  first); each worker holds exactly one in-flight spec, and the next
  assignment doubles as the acknowledgement that its slab was consumed,
  so no extra synchronization guards the plane;
* **a supervisor respawns crashed workers** — reusing the watchdog/
  :class:`~repro.core.recovery.RecoveryPolicy` idiom of bounded retries:
  a worker that dies gets a fresh process+slab and its in-flight spec is
  requeued at the front *exactly once*; a second crash on the same spec
  raises :class:`WorkerCrash` instead of looping.

Results stream back in completion order; :class:`StreamingMerge` commits
each one as it lands (the caches are keyed by spec, so commit order never
changes cache content) and restores spec order at the end, keeping a
pooled sweep byte-identical to a serial one.

On spawn-only platforms (no ``fork``) the parent's memo caches are lost
in children, so each worker rebuilds the distinct workload configurations
once at startup (:func:`rebuild_memoized_inputs`) instead of silently
recomputing them per spec.
"""

import collections
import multiprocessing
import os
import pickle
import queue as queue_module
import time

from multiprocessing import shared_memory

from repro.sim.tracing import HostCounters
from repro.util.buffers import as_byte_view, copy_into

#: Per-worker result-plane slab size; outcomes are a few KB, so the
#: default leaves ~1000x headroom before the inline-fallback path.
DEFAULT_SLAB_BYTES = 4 << 20

#: How long the supervisor waits on the control queue before checking
#: worker liveness (host seconds; a crashed worker is noticed within one
#: interval, which is negligible against spec execution times).
_SUPERVISE_INTERVAL_S = 0.05


class WorkerCrash(RuntimeError):
    """A pool worker died twice on the same spec (requeue budget spent)."""


def slab_bytes():
    """Result-plane slab size (``REPRO_POOL_SLAB_BYTES`` overrides)."""
    override = os.environ.get("REPRO_POOL_SLAB_BYTES")
    return int(override) if override else DEFAULT_SLAB_BYTES


def preferred_start_method():
    """``fork`` where available (inherits warm pages), else the default."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def distinct_configs(specs):
    """Ordered distinct ``(workload, params)`` pairs across ``specs``."""
    configs = []
    seen = set()
    for spec in specs:
        key = (spec.workload, spec.params)
        if key not in seen:
            seen.add(key)
            configs.append(key)
    return configs


def rebuild_memoized_inputs(configs):
    """Build memoized inputs/oracles for ``configs``; returns builds done.

    In the parent this is the pre-fork warm-up (workers then inherit the
    arrays as copy-on-write pages); in a spawned worker it is the
    per-worker rebuild of the memo the child did not inherit.  A
    configuration that fails to warm simply builds lazily on first use.
    """
    from repro.experiments.spec import WORKLOAD_FACTORIES

    built = 0
    for workload, params in configs:
        try:
            instance = WORKLOAD_FACTORIES[workload](**dict(params))
            instance._reference_outputs()
            built += 1
        except Exception:
            pass
    return built


def _portable_error(error):
    """An exception safe to send over the control queue."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def _worker_main(worker_id, token, tasks, results, slab_name, slab_size,
                 start_method, configs):
    """Worker loop: attach the slab, (re)warm, execute specs until None.

    Control messages are small tuples ``(kind, worker_id, token, ...)``:
    ``ready`` (startup, carries the memo-rebuild count), ``done`` (payload
    in the slab), ``inline`` (payload rode the queue: slab too small),
    ``error`` (spec raised).  ``token`` is this incarnation's spawn serial
    — the parent drops messages whose token no longer matches the worker
    at this id, so a crashed worker's last message can never be read
    against its replacement's slab.  Host-seconds ride along for the
    cost-aware scheduler's timing records.
    """
    from repro.util.hostalloc import retain_arena
    from repro.analysis.report import REPORT_TOKEN_ENV

    # Sanitize reports: each worker incarnation writes under its own
    # token.  Pids recycle across respawns (and collide with unrelated
    # processes), so pid-named files could silently clobber a crashed
    # predecessor's report; ``w<id>-<spawn-serial>`` never repeats.
    os.environ[REPORT_TOKEN_ENV] = f"w{worker_id}-{token}"
    retain_arena()
    rebuilt = 0
    if start_method != "fork":
        # Spawned children start with cold memo caches: rebuild each
        # distinct configuration once now, not once per spec later.
        rebuilt = rebuild_memoized_inputs(configs)
    slab = shared_memory.SharedMemory(name=slab_name)
    try:
        results.put(("ready", worker_id, token, rebuilt))
        while True:
            task = tasks.get()
            if task is None:
                break
            seq, spec = task
            started = time.perf_counter()  # sanitizer: allow[R003]
            try:
                outcome = spec.execute()
            except Exception as error:
                results.put(
                    ("error", worker_id, token, seq, _portable_error(error))
                )
                continue
            host_s = time.perf_counter() - started  # sanitizer: allow[R003]
            payload = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
            if len(payload) <= slab_size:
                copy_into(slab.buf, payload)
                results.put(
                    ("done", worker_id, token, seq, len(payload), host_s)
                )
            else:
                results.put(
                    ("inline", worker_id, token, seq, payload, host_s)
                )
    finally:
        slab.close()


class StreamingMerge:
    """Commit outcomes as they land; restore spec order at the end.

    ``commit`` (typically :func:`repro.experiments.common.store`) runs on
    first deposit of each sequence number — caches are keyed by spec, so
    landing order never changes cache *content*, only arrival time.  A
    duplicate deposit (a crashed worker's last message surfacing after
    its spec was requeued and re-executed) is counted and ignored:
    execution is deterministic, so the duplicate is byte-identical anyway.
    """

    def __init__(self, specs, commit=None):
        self.specs = list(specs)
        self._commit = commit
        self._outcomes = [None] * len(self.specs)
        self._landed = [False] * len(self.specs)
        self.landed = 0
        self.duplicates = 0

    def deposit(self, seq, outcome):
        """Record one arrival; True when it was the first for ``seq``."""
        if self._landed[seq]:
            self.duplicates += 1
            return False
        self._landed[seq] = True
        self._outcomes[seq] = outcome
        self.landed += 1
        if self._commit is not None:
            self._commit(self.specs[seq], outcome)
        return True

    @property
    def complete(self):
        return self.landed == len(self.specs)

    def ordered(self):
        """Outcomes in spec order; every slot must have landed."""
        if not self.complete:
            missing = [i for i, landed in enumerate(self._landed) if not landed]
            raise RuntimeError(f"merge incomplete: seqs {missing} never landed")
        return list(self._outcomes)


class _Worker:
    """Parent-side record of one live worker."""

    __slots__ = ("process", "tasks", "slab", "token", "inflight")

    def __init__(self, process, tasks, slab, token):
        self.process = process
        self.tasks = tasks
        self.slab = slab
        self.token = token
        self.inflight = None  # (seq, spec) currently executing, or None


class PersistentWorkerPool:
    """The parent-side engine: spawn once, dispatch, supervise, merge."""

    def __init__(self, jobs, start_method=None, slab_size=None,
                 counters=None):
        self.jobs = max(1, int(jobs))
        self.start_method = start_method or preferred_start_method()
        self.context = multiprocessing.get_context(self.start_method)
        self.slab_size = slab_size or slab_bytes()
        self.counters = counters if counters is not None else HostCounters()
        self._workers = {}
        self._results = None
        self._configs = ()
        self._spawn_serial = 0
        self.started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self, configs=()):
        """Fork the workers (idempotent).  Call after the parent pre-warm.

        ``configs`` is the distinct ``(workload, params)`` list spawned
        workers rebuild at startup; fork workers inherit the parent memo
        and ignore it.
        """
        if self.started:
            return
        self._configs = tuple(configs)
        self._results = self.context.Queue()
        for worker_id in range(self.jobs):
            self._spawn(worker_id)
        self.started = True

    def _spawn(self, worker_id):
        tasks = self.context.SimpleQueue()
        slab = shared_memory.SharedMemory(create=True, size=self.slab_size)
        self._spawn_serial += 1
        token = self._spawn_serial
        process = self.context.Process(
            target=_worker_main,
            args=(worker_id, token, tasks, self._results, slab.name,
                  self.slab_size, self.start_method, self._configs),
            name=f"repro-pool-{worker_id}",
            daemon=True,
        )
        process.start()
        self.counters.increment("workers_spawned")
        self._workers[worker_id] = _Worker(process, tasks, slab, token)

    def close(self):
        """Shut the pool down; safe to call repeatedly."""
        if not self.started:
            return
        for worker in self._workers.values():
            if worker.process.is_alive():
                try:
                    worker.tasks.put(None)
                except (OSError, ValueError):
                    pass
        for worker in self._workers.values():
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            self._retire(worker)
        self._workers.clear()
        if self._results is not None:
            self._results.close()
            self._results.join_thread()
            self._results = None
        self.started = False
        if os.environ.get("REPRO_SANITIZE_REPORT"):
            # All workers are down: fold their per-incarnation reports
            # into one artifact for CI to upload.
            from repro.analysis.report import merge_reports

            merge_reports()

    @staticmethod
    def _retire(worker):
        """Release one worker's parent-side resources (slab, queue)."""
        try:
            worker.slab.close()
        except (OSError, BufferError):
            pass
        try:
            worker.slab.unlink()
        except (OSError, FileNotFoundError):
            pass
        try:
            worker.tasks.close()
        except (OSError, ValueError):
            pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- the sweep -----------------------------------------------------------

    def run(self, pairs, on_result):
        """Execute ``(seq, spec)`` pairs (already cost-ordered).

        ``on_result(seq, outcome, host_s)`` fires in completion order and
        returns whether the deposit was the first for that seq (see
        :meth:`StreamingMerge.deposit`); the pool loops until every seq
        has landed exactly once.  A spec exception propagates to the
        caller after the pool shuts down (matching ``Pool.map``).
        """
        if not self.started:
            raise RuntimeError("pool not started")
        pending = collections.deque(pairs)
        requeues = {}
        landed = 0
        total = len(pairs)
        dispatch_started = time.perf_counter()  # sanitizer: allow[R003]
        busy_s = 0.0
        self._fill_idle(pending)
        while landed < total:
            try:
                message = self._results.get(timeout=_SUPERVISE_INTERVAL_S)
            except queue_module.Empty:
                self._supervise(pending, requeues)
                continue
            self.counters.increment("control_messages")
            kind, worker_id, token = message[0], message[1], message[2]
            worker = self._workers.get(worker_id)
            if worker is None or worker.token != token:
                # A retired incarnation's last words.  Its slab is gone and
                # its in-flight spec was already requeued at retirement, so
                # the replacement execution covers it; drop the message.
                self.counters.increment("stale_messages")
                continue
            if kind == "ready":
                self.counters.increment("worker_rebuilds", message[3])
                continue
            if kind == "error":
                error = message[4]
                self.close()
                raise error
            _, _, _, seq, payload, host_s = message
            if kind == "done":
                # Zero-copy recall: unpickle straight off the slab view.
                # The slice is released immediately — a lingering export
                # would block closing the slab when a worker is retired.
                view = as_byte_view(worker.slab.buf)[:payload]
                try:
                    outcome = pickle.loads(view)
                finally:
                    view.release()
                self.counters.increment("plane_payloads")
                self.counters.increment("plane_bytes", payload)
            else:  # "inline": the outcome outgrew the slab
                outcome = pickle.loads(payload)
                self.counters.increment("plane_inline_fallbacks")
                self.counters.increment("plane_bytes", len(payload))
            busy_s += host_s
            if worker.inflight is not None and worker.inflight[0] == seq:
                worker.inflight = None
                self._assign_next(worker, pending)
            if on_result(seq, outcome, host_s):
                landed += 1
            else:
                self.counters.increment("duplicate_results")
        wall_s = time.perf_counter() - dispatch_started  # sanitizer: allow[R003]
        # Dispatch overhead: parent wall-clock across all worker slots not
        # covered by spec execution (queue latency, unpickling, idle tails).
        self.counters.increment("specs_completed", landed)
        self.counters.increment(
            "dispatch_overhead_us",
            int(max(wall_s * len(self._workers) - busy_s, 0.0) * 1e6),
        )
        return landed

    def _fill_idle(self, pending):
        for worker in self._workers.values():
            if worker.inflight is None:
                self._assign_next(worker, pending)

    def _assign_next(self, worker, pending):
        if pending and worker.process.is_alive():
            pair = pending.popleft()
            worker.inflight = pair
            worker.tasks.put(pair)
            self.counters.increment("specs_dispatched")

    def _supervise(self, pending, requeues):
        """Respawn dead workers; requeue their in-flight spec exactly once.

        The recovery ladder mirrors :class:`~repro.core.recovery
        .RecoveryPolicy`'s bounded-retry idiom: one respawn-and-requeue
        per spec, then escalate — a spec that kills two fresh workers is
        declared poisonous rather than retried forever.
        """
        for worker_id, worker in list(self._workers.items()):
            if worker.process.is_alive():
                continue
            exitcode = worker.process.exitcode
            inflight = worker.inflight
            self._retire(worker)
            self.counters.increment("worker_respawns")
            if inflight is not None:
                seq, spec = inflight
                if requeues.get(seq, 0) >= 1:
                    del self._workers[worker_id]
                    self.close()
                    raise WorkerCrash(
                        f"worker died twice (exit {exitcode}) executing "
                        f"spec {spec.workload!r} seq {seq}; not requeueing "
                        "again"
                    )
                requeues[seq] = requeues.get(seq, 0) + 1
                self.counters.increment("specs_requeued")
                pending.appendleft((seq, spec))
            self._spawn(worker_id)
            self._assign_next(self._workers[worker_id], pending)
