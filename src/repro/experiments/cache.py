"""Persistent on-disk result cache for experiment runs.

Entries live under ``benchmarks/results/cache/`` (override with the
``REPRO_CACHE_DIR`` environment variable), one pickle per executed
:class:`~repro.experiments.spec.RunSpec`.  The file name is the SHA-256 of
the spec's canonical key *plus a source fingerprint* of ``src/repro`` — a
hash over every simulator source file that can influence a run's outcome.
Editing the simulator therefore invalidates every entry at once, while
editing experiment table/rendering code (which only projects outcomes)
leaves the cache warm.

Writes are atomic (temp file + rename) and every rename is verified after
the fact — the visible file must load back as an entry for the spec being
written — so concurrent sweeps (or two pool workers finishing the same
deduped spec) sharing a cache directory never observe torn entries.

Alongside the outcome pickles the cache keeps **timing metadata**
(``timings.json``): the last recorded host-seconds per spec, keyed by the
spec key *alone* — no source fingerprint — so the cost-aware scheduler can
still rank specs after a simulator edit invalidates every outcome.  A
stale timing can only misorder a queue, never corrupt a result.
"""

import functools
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

_SRC_ROOT = Path(__file__).resolve().parents[1]  # src/repro

#: Experiment modules only *project* outcomes into tables, so they do not
#: invalidate results — except the spec module itself, which defines how a
#: spec executes.
_FINGERPRINT_EXEMPT = _SRC_ROOT / "experiments"
_FINGERPRINT_KEPT = {"spec.py"}


@functools.lru_cache(maxsize=1)
def source_fingerprint():
    """SHA-256 over the simulator sources that determine run outcomes."""
    digest = hashlib.sha256()
    for path in sorted(_SRC_ROOT.rglob("*.py")):
        if path.parent == _FINGERPRINT_EXEMPT and path.name not in _FINGERPRINT_KEPT:
            continue
        digest.update(str(path.relative_to(_SRC_ROOT)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` or ``<repo>/benchmarks/results/cache``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    repo_root = _SRC_ROOT.parents[1]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / "results" / "cache"
    # Installed without the benchmark tree: keep the cache out of site-packages.
    return Path(tempfile.gettempdir()) / "repro-result-cache"


class ResultCache:
    """Pickle-file cache of :class:`~repro.experiments.spec.SpecOutcome`."""

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, spec):
        digest = hashlib.sha256()
        digest.update(spec.key().encode())
        digest.update(b"\0")
        digest.update(source_fingerprint().encode())
        return self.root / f"{digest.hexdigest()}.pkl"

    def get(self, spec):
        """The cached outcome for ``spec``, or None.

        A corrupt or unreadable entry (torn write from an older run, a
        pickle from an incompatible version) behaves as a miss.
        """
        path = self._path(spec)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if entry.get("key") != spec.key():  # hash collision paranoia
            return None
        return entry.get("outcome")

    def put(self, spec, outcome):
        """Persist ``outcome`` atomically; concurrent writers are safe.

        Each writer stages into its own temp file and renames, so two
        workers finishing the same deduped spec race only at the rename —
        whichever entry wins is a complete pickle for the same key.  The
        post-rename verify re-reads whatever is visible and accepts any
        valid entry for this spec (ours or the concurrent winner's); a
        failed verify rewrites once, then raises instead of leaving a
        corrupt entry behind.
        """
        path = self._path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": spec.key(),
            "fingerprint": source_fingerprint(),
            "outcome": outcome,
        }
        for attempt in (1, 2):
            self._write_atomic(path, entry)
            if self._verify_entry(path, spec):
                return
        raise OSError(
            f"result-cache entry {path.name} failed post-rename "
            "verification twice; refusing to leave a corrupt entry"
        )

    @staticmethod
    def _write_atomic(path, entry):
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _verify_entry(self, path, spec):
        """The visible entry loads and fingerprints as one for ``spec``."""
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return False
        return (
            isinstance(entry, dict)
            and entry.get("key") == spec.key()
            and entry.get("fingerprint") == source_fingerprint()
            and entry.get("outcome") is not None
        )

    # -- timing metadata (cost-aware scheduling) ------------------------------

    _TIMINGS_NAME = "timings.json"

    @staticmethod
    def timing_key(spec):
        """Digest of the spec key alone (deliberately fingerprint-free).

        Timings are scheduling *hints*: surviving a source edit is the
        point (the next cold sweep after an edit is exactly when a good
        dispatch order pays), and a stale hint can only misorder the
        queue.  Outcome entries, by contrast, stay fingerprint-addressed.
        """
        return hashlib.sha256(spec.key().encode()).hexdigest()

    def timings(self):
        """Recorded host-seconds by :meth:`timing_key` (empty on any rot)."""
        try:
            loaded = json.loads(
                (self.root / self._TIMINGS_NAME).read_text()
            )
        except (OSError, ValueError):
            return {}
        return loaded if isinstance(loaded, dict) else {}

    def record_timings(self, seconds_by_key):
        """Merge ``{timing_key: host_seconds}`` and rewrite atomically."""
        if not seconds_by_key:
            return
        merged = self.timings()
        for key, seconds in seconds_by_key.items():
            merged[key] = round(float(seconds), 6)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(merged, handle, sort_keys=True)
            os.replace(tmp_name, self.root / self._TIMINGS_NAME)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def expected_cost(self, spec):
        """The last recorded host-seconds for ``spec``, or None."""
        return self.timings().get(self.timing_key(spec))

    def clear(self):
        """Remove every cache entry (stale fingerprints included)."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self):
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))
