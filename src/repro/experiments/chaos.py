"""Chaos — GMAC under a faulty accelerator stack.

Not a figure from the paper, but a direct consequence of its central
claim: because ADSM keeps *all* coherence state and actions on the CPU
(Section 3.2), the host always holds enough information to retry, rebuild
and even survive losing the accelerator outright.  This experiment sweeps
injected fault rates over Parboil workloads and checks that every run
still validates against the numpy oracle, reporting the recovery overhead
(the ``Retry`` accounting category plus elapsed-time inflation) that the
fault tolerance costs.

Scenarios per workload:

* ``baseline``      — fault-free reference (and the zero-cost check);
* ``transient-2%``  — 2% of DMA attempts fail transiently, plus
  occasional short disk reads;
* ``transient-5%``  — the acceptance-criterion rate;
* ``device-lost``   — the accelerator dies at a kernel launch and is
  re-materialised from host-canonical blocks;
* ``storm``         — a 25% transfer-fault storm with a sensitive
  degradation policy, demonstrating the rolling -> lazy downgrade.

On top of the fault sweep, an **adversarial host-concurrency family**
races the CPU against an open kernel window — a faulting store, an
interposed write() from a released object, and a direct device-memory
observation — and scores each against the kernel-window race detector:
the row is ``detected`` only if the sanitizer flags the access with the
expected ``window-*`` rule while a clean call/sync cycle stays silent.
"""

import numpy as np

from repro.hw.machine import reference_system
from repro.os.paging import AccessKind
from repro.cuda.kernels import Kernel
from repro.workloads.base import Application
from repro.experiments.common import params_for, run_spec
from repro.experiments.spec import RunSpec
from repro.experiments.result import ExperimentResult
from repro.util.errors import RecoveryExhausted

EXPERIMENT_ID = "chaos"
TITLE = "Fault injection sweep: recovery overhead and survival"
PAPER_CLAIM = (
    "host-resident coherence state (the ADSM asymmetry) is a natural "
    "recovery point: workloads validate under transfer faults, short "
    "reads and device loss, paying only bounded retry overhead"
)

#: (scenario name, FaultPlan kwargs, RecoveryPolicy kwargs or None).
SCENARIOS = (
    ("baseline", None, None),
    ("transient-2%",
     dict(transfer_fault_rate=0.02, short_read_rate=0.10), None),
    ("transient-5%",
     dict(transfer_fault_rate=0.05, short_read_rate=0.25), None),
    ("device-lost", dict(device_lost_at_launch=1), None),
    ("storm", dict(transfer_fault_rate=0.25),
     dict(degrade_min_attempts=8, degrade_threshold=0.15)),
)


def _workload_params(quick):
    """(name, constructor params) for the swept workloads."""
    yield "vecadd", dict(elements=256 * 1024 if quick else 2 * 1024 * 1024)
    yield "tpacf", params_for("tpacf", quick=quick)
    # pns makes many kernel calls, so the storm scenario crosses the
    # degradation threshold at a call boundary and the downgrade shows up.
    yield "pns", params_for("pns", quick=quick)
    # mri-q reads its inputs through the interposed libc, exercising
    # short-read resumption.
    yield "mri-q", params_for("mri-q", quick=quick)


def _spec(name, params, plan_kwargs, recovery_kwargs):
    fault_plan = None
    if plan_kwargs is not None:
        fault_plan = dict(seed=17, **plan_kwargs)
    return RunSpec.make(
        workload=name,
        params=params,
        protocol="rolling",
        layer="driver",
        fault_plan=fault_plan,
        recovery=recovery_kwargs,
    )


def specs(quick=False):
    """Every (workload, scenario) combination, in table order.

    The host-race family is deliberately absent: its runs *provoke*
    sanitizer violations, which would kill a sanitized pool sweep, so
    those scenarios run inline in :func:`run` with a local sanitizer
    whose findings are scored rather than raised.
    """
    return [
        _spec(name, params, plan_kwargs, recovery_kwargs)
        for name, params in _workload_params(quick)
        for _, plan_kwargs, recovery_kwargs in SCENARIOS
    ]


def _scale_fn(gpu, data, n, factor):
    view = gpu.view(data, "f4", n)
    view[:] = view * np.float32(factor)


_RACE_KERNEL = Kernel(
    "race-scale",
    _scale_fn,
    cost=lambda data, n, factor: (n, 8 * n),
    writes=("data",),
)

#: (scenario, racing-rule the detector must fire, description).
RACE_SCENARIOS = (
    ("host-write-window", "window-access",
     "CPU store to an object released to an in-flight kernel"),
    ("host-io-window", "window-io",
     "interposed write() sourcing from a released object"),
    ("host-observe-window", "window-device-observe",
     "device memory observed mid-window without GMAC mediation"),
    ("host-after-sync", None,
     "the same store after the barrier: must stay silent"),
)


def _race_rows():
    """Drive each adversarial host phase; score it via the race detector."""
    from repro.analysis import attach_sanitizer

    n = 16 * 1024
    rows = []
    for scenario, expected_rule, _ in RACE_SCENARIOS:
        app = Application(reference_system())
        gmac = app.gmac(protocol="rolling", layer="driver")
        data = gmac.alloc(4 * n, name="data")
        data.write_array(np.arange(n, dtype=np.float32))
        sanitizer = attach_sanitizer(gmac, f"chaos-{scenario}")
        gmac.call(_RACE_KERNEL, writes=(data,), data=data, n=n, factor=2.0)
        if scenario == "host-write-window":
            app.process.touch(int(data), 64, AccessKind.WRITE)
        elif scenario == "host-io-window":
            app.fs.create("race.out", b"")
            with app.fs.open("race.out", "w") as handle:
                app.libc.write(handle, int(data), 64)
        elif scenario == "host-observe-window":
            gmac.machine.gpu.memory.view(data.device_addr, "f4", 16)
        gmac.sync()
        if scenario == "host-after-sync":
            app.process.touch(int(data), 64, AccessKind.WRITE)
        violations = sanitizer.finish(raise_on_violation=False)
        fired = sorted({v.rule for v in violations
                        if v.rule.startswith("window")})
        if expected_rule is None:
            verdict = "clean" if not fired else "FALSE-POSITIVE"
        else:
            verdict = "detected" if expected_rule in fired else "MISSED"
        rows.append([
            "host-race", scenario, verdict, "-", 1, "-", "-", "-", "-",
            "-", ",".join(fired) if fired else "-",
        ])
    return rows


def run(quick=False):
    rows = []
    all_verified = True
    exhausted = []
    for name, params in _workload_params(quick):
        baseline_elapsed = None
        for scenario, plan_kwargs, recovery_kwargs in SCENARIOS:
            try:
                result = run_spec(
                    _spec(name, params, plan_kwargs, recovery_kwargs)
                )
            except RecoveryExhausted as error:
                # Recovery giving up is a result, not a crash: the typed,
                # picklable error becomes a gave-up row.
                exhausted.append((name, scenario, error))
                rows.append([
                    name, scenario, "gave-up", "-", "-", "-", "-", "-",
                    "-", "-", f"{error.attempts} attempts",
                ])
                continue
            all_verified = all_verified and result.verified
            if scenario == "baseline":
                baseline_elapsed = result.elapsed
            stats = result.recovery_stats
            retries = (
                stats.get("transfer_retries", 0)
                + stats.get("launch_retries", 0)
                + stats.get("oom_retries", 0)
            )
            degraded = "-"
            if stats.get("degradations"):
                degraded = "->".join(
                    [stats["degradations"][0]["from"]]
                    + [d["to"] for d in stats["degradations"]]
                )
            overhead = (result.elapsed - baseline_elapsed) / baseline_elapsed
            rows.append([
                name,
                scenario,
                "yes" if result.verified else "NO",
                round(result.elapsed * 1e3, 2),
                result.injected_faults,
                retries,
                stats.get("device_recoveries", 0),
                stats.get("short_read_resumes", 0),
                round(result.breakdown.get("Retry", 0.0) * 1e3, 3),
                degraded,
                f"{overhead:+.1%}",
            ])
    rows.extend(_race_rows())
    notes = [
        "driver abstraction layer; rolling-update start protocol; all "
        "scenarios share one deterministic fault seed",
        "host-race rows race the CPU against an open kernel window; the "
        "last column lists the window-* rules the race detector fired "
        "(the after-sync control must stay clean)",
        "'retry ms' is the Retry break-down category (backoff waits and "
        "device resets); DMA re-attempt time stays in Copy because the "
        "link really is busy",
        "overhead is elapsed-time inflation over the fault-free baseline "
        "of the same workload",
    ]
    for name, scenario, error in exhausted:
        notes.append(
            f"{name}/{scenario} gave up: RecoveryExhausted after "
            f"{error.attempts} attempts on {error.resource}"
        )
    if not all_verified:
        notes.append("WARNING: at least one run failed oracle validation")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "workload", "scenario", "verified", "elapsed ms", "injected",
            "retries", "device recoveries", "read resumes", "retry ms",
            "degraded", "overhead",
        ],
        rows=rows,
        notes=notes,
    )
