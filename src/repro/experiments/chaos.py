"""Chaos — GMAC under a faulty accelerator stack.

Not a figure from the paper, but a direct consequence of its central
claim: because ADSM keeps *all* coherence state and actions on the CPU
(Section 3.2), the host always holds enough information to retry, rebuild
and even survive losing the accelerator outright.  This experiment sweeps
injected fault rates over Parboil workloads and checks that every run
still validates against the numpy oracle, reporting the recovery overhead
(the ``Retry`` accounting category plus elapsed-time inflation) that the
fault tolerance costs.

Scenarios per workload:

* ``baseline``      — fault-free reference (and the zero-cost check);
* ``transient-2%``  — 2% of DMA attempts fail transiently, plus
  occasional short disk reads;
* ``transient-5%``  — the acceptance-criterion rate;
* ``device-lost``   — the accelerator dies at a kernel launch and is
  re-materialised from host-canonical blocks;
* ``storm``         — a 25% transfer-fault storm with a sensitive
  degradation policy, demonstrating the rolling -> lazy downgrade.
"""

from repro.experiments.common import params_for, run_spec
from repro.experiments.spec import RunSpec
from repro.experiments.result import ExperimentResult
from repro.util.errors import RecoveryExhausted

EXPERIMENT_ID = "chaos"
TITLE = "Fault injection sweep: recovery overhead and survival"
PAPER_CLAIM = (
    "host-resident coherence state (the ADSM asymmetry) is a natural "
    "recovery point: workloads validate under transfer faults, short "
    "reads and device loss, paying only bounded retry overhead"
)

#: (scenario name, FaultPlan kwargs, RecoveryPolicy kwargs or None).
SCENARIOS = (
    ("baseline", None, None),
    ("transient-2%",
     dict(transfer_fault_rate=0.02, short_read_rate=0.10), None),
    ("transient-5%",
     dict(transfer_fault_rate=0.05, short_read_rate=0.25), None),
    ("device-lost", dict(device_lost_at_launch=1), None),
    ("storm", dict(transfer_fault_rate=0.25),
     dict(degrade_min_attempts=8, degrade_threshold=0.15)),
)


def _workload_params(quick):
    """(name, constructor params) for the swept workloads."""
    yield "vecadd", dict(elements=256 * 1024 if quick else 2 * 1024 * 1024)
    yield "tpacf", params_for("tpacf", quick=quick)
    # pns makes many kernel calls, so the storm scenario crosses the
    # degradation threshold at a call boundary and the downgrade shows up.
    yield "pns", params_for("pns", quick=quick)
    # mri-q reads its inputs through the interposed libc, exercising
    # short-read resumption.
    yield "mri-q", params_for("mri-q", quick=quick)


def _spec(name, params, plan_kwargs, recovery_kwargs):
    fault_plan = None
    if plan_kwargs is not None:
        fault_plan = dict(seed=17, **plan_kwargs)
    return RunSpec.make(
        workload=name,
        params=params,
        protocol="rolling",
        layer="driver",
        fault_plan=fault_plan,
        recovery=recovery_kwargs,
    )


def specs(quick=False):
    """Every (workload, scenario) combination, in table order."""
    return [
        _spec(name, params, plan_kwargs, recovery_kwargs)
        for name, params in _workload_params(quick)
        for _, plan_kwargs, recovery_kwargs in SCENARIOS
    ]


def run(quick=False):
    rows = []
    all_verified = True
    exhausted = []
    for name, params in _workload_params(quick):
        baseline_elapsed = None
        for scenario, plan_kwargs, recovery_kwargs in SCENARIOS:
            try:
                result = run_spec(
                    _spec(name, params, plan_kwargs, recovery_kwargs)
                )
            except RecoveryExhausted as error:
                # Recovery giving up is a result, not a crash: the typed,
                # picklable error becomes a gave-up row.
                exhausted.append((name, scenario, error))
                rows.append([
                    name, scenario, "gave-up", "-", "-", "-", "-", "-",
                    "-", "-", f"{error.attempts} attempts",
                ])
                continue
            all_verified = all_verified and result.verified
            if scenario == "baseline":
                baseline_elapsed = result.elapsed
            stats = result.recovery_stats
            retries = (
                stats.get("transfer_retries", 0)
                + stats.get("launch_retries", 0)
                + stats.get("oom_retries", 0)
            )
            degraded = "-"
            if stats.get("degradations"):
                degraded = "->".join(
                    [stats["degradations"][0]["from"]]
                    + [d["to"] for d in stats["degradations"]]
                )
            overhead = (result.elapsed - baseline_elapsed) / baseline_elapsed
            rows.append([
                name,
                scenario,
                "yes" if result.verified else "NO",
                round(result.elapsed * 1e3, 2),
                result.injected_faults,
                retries,
                stats.get("device_recoveries", 0),
                stats.get("short_read_resumes", 0),
                round(result.breakdown.get("Retry", 0.0) * 1e3, 3),
                degraded,
                f"{overhead:+.1%}",
            ])
    notes = [
        "driver abstraction layer; rolling-update start protocol; all "
        "scenarios share one deterministic fault seed",
        "'retry ms' is the Retry break-down category (backoff waits and "
        "device resets); DMA re-attempt time stays in Copy because the "
        "link really is busy",
        "overhead is elapsed-time inflation over the fault-free baseline "
        "of the same workload",
    ]
    for name, scenario, error in exhausted:
        notes.append(
            f"{name}/{scenario} gave up: RecoveryExhausted after "
            f"{error.attempts} attempts on {error.resource}"
        )
    if not all_verified:
        notes.append("WARNING: at least one run failed oracle validation")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "workload", "scenario", "verified", "elapsed ms", "injected",
            "retries", "device recoveries", "read resumes", "retry ms",
            "degraded", "overhead",
        ],
        rows=rows,
        notes=notes,
    )
