"""Figure 12 — tpacf execution time vs block size for rolling sizes 1/2/4.

"For rolling size values of 1 and 2, and small memory block values, data is
being transferred from system memory to accelerator memory continuously ...
When the memory block size reaches a critical value, memory blocks start
being overwritten by subsequent passes before they are evicted ... Once the
complete input data set fits in the rolling size, the execution time
decreases abruptly.  For a rolling size value of 4, the execution time of
tpacf is almost constant for all block sizes."
"""

from repro.util.units import KB, MB, format_size
from repro.experiments.common import run_spec
from repro.experiments.spec import RunSpec
from repro.experiments.result import ExperimentResult

EXPERIMENT_ID = "fig12"
TITLE = "tpacf time across block sizes for fixed rolling sizes 1, 2, 4"
PAPER_CLAIM = (
    "small rolling sizes continuously re-transfer the multi-pass input; "
    "time drops at a critical block size (~TILE/R) and abruptly once the "
    "input fits in the rolling size; rolling size 4 is nearly flat"
)

BLOCK_SIZES = (
    128 * KB, 256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB, 8 * MB,
)
QUICK_BLOCK_SIZES = (128 * KB, 512 * KB, 2 * MB)

ROLLING_SIZES = (1, 2, 4)


def _spec(block_size, rolling_size, n_points):
    return RunSpec.make(
        workload="tpacf",
        params=dict(n_points=n_points),
        protocol="rolling",
        layer="driver",
        protocol_options={
            "block_size": block_size,
            "rolling_size": rolling_size,
        },
    )


def specs(quick=False):
    """The (block size x rolling size) tpacf sweep."""
    block_sizes = QUICK_BLOCK_SIZES if quick else BLOCK_SIZES
    n_points = 131072 if quick else 524288
    return [
        _spec(block_size, rolling_size, n_points)
        for block_size in block_sizes
        for rolling_size in ROLLING_SIZES
    ]


def run(quick=False):
    block_sizes = QUICK_BLOCK_SIZES if quick else BLOCK_SIZES
    n_points = 131072 if quick else 524288
    rows = []
    for block_size in block_sizes:
        workload_rows = [format_size(block_size)]
        verified = True
        for rolling_size in ROLLING_SIZES:
            result = run_spec(_spec(block_size, rolling_size, n_points))
            verified = verified and result.verified
            workload_rows.append(round(result.elapsed * 1e3, 2))
        workload_rows.append("yes" if verified else "NO")
        rows.append(workload_rows)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["block size"] + [
            f"tpacf-{r} ms" for r in ROLLING_SIZES
        ] + ["verified"],
        rows=rows,
        notes=[
            f"input: {n_points} bodies "
            f"({16 * n_points // (1024 * 1024)}MB), 4 passes over 1MB tiles",
        ],
        chart_spec=("block size", [
            f"tpacf-{r} ms" for r in ROLLING_SIZES
        ]),
    )
