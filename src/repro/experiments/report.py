"""One-shot reproduction report.

``python -m repro.experiments report`` runs every registered experiment
and writes a single markdown document — tables, charts where available,
and the paper claim each artifact is checked against.  This is the
regenerate-everything entry point referenced by EXPERIMENTS.md.
"""

import io
import time

from repro.experiments.registry import REGISTRY, run_experiment

#: Paper-facing ordering for the report sections.
SECTION_ORDER = [
    "motivation", "fig2", "tab2", "porting",
    "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "ablations", "contracts", "chaos", "failover",
]


def _markdown_table(result):
    out = io.StringIO()
    out.write("| " + " | ".join(str(h) for h in result.headers) + " |\n")
    out.write("|" + "---|" * len(result.headers) + "\n")
    for row in result.rows:
        out.write("| " + " | ".join(str(cell) for cell in row) + " |\n")
    return out.getvalue()


def build_report(quick=False, experiment_ids=None, include_charts=True):
    """Run experiments and return the markdown report text."""
    ids = list(experiment_ids) if experiment_ids else [
        experiment_id for experiment_id in SECTION_ORDER
        if experiment_id in REGISTRY
    ]
    out = io.StringIO()
    out.write("# GMAC/ADSM reproduction report\n\n")
    out.write(
        "Regenerated {} artifacts ({} workload sizes).\n\n".format(
            len(ids), "quick" if quick else "full"
        )
    )
    for experiment_id in ids:
        started = time.time()  # sanitizer: allow[R003]
        result = run_experiment(experiment_id, quick=quick)
        out.write(f"## {result.experiment_id} — {result.title}\n\n")
        out.write(f"**Paper claim:** {result.paper_claim}\n\n")
        out.write(_markdown_table(result))
        out.write("\n")
        for note in result.notes:
            out.write(f"*{note}*\n\n")
        if include_charts:
            chart = result.chart()
            if chart is not None:
                out.write("```\n" + chart + "\n```\n\n")
        out.write(
            f"_regenerated in {time.time() - started:.1f}s wall_\n\n"  # sanitizer: allow[R003]
        )
    return out.getvalue()


def write_report(path, quick=False, experiment_ids=None):
    """Build the report and write it to ``path``; returns the text."""
    text = build_report(quick=quick, experiment_ids=experiment_ids)
    with open(path, "w") as handle:
        handle.write(text)
    return text
