"""Figure 11 — vector-add transfer times and bandwidth vs block size.

"The data transfer bandwidth increases with the block size, reaching its
maximum value for block sizes of 32MB ... There is an anomaly for a
[mid-sized] block: the CPU-to-accelerator transfer time is smaller than
for larger block sizes [because eager evictions overlap with CPU
computation; beyond it] evictions must wait for the previous transfer to
finish."
"""

from repro.util.units import KB, MB, GB, format_size
from repro.hw.specs import PCIE_2_0_X16
from repro.experiments.common import run_spec
from repro.experiments.spec import RunSpec
from repro.experiments.result import ExperimentResult

EXPERIMENT_ID = "fig11"
TITLE = "vecadd transfer phase times and PCIe effective bandwidth"
PAPER_CLAIM = (
    "bandwidth rises to its max at 32MB; CPU-to-GPU time has a minimum at a "
    "mid-size block (eager overlap), then rises when evictions outpace the "
    "CPU; GPU-to-CPU time falls monotonically"
)

BLOCK_SIZES = (
    4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB,
    512 * KB, 1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB, 32 * MB,
)
QUICK_BLOCK_SIZES = (4 * KB, 64 * KB, 256 * KB, 1 * MB, 32 * MB)


def _spec(block_size, elements):
    # A fixed generous rolling size isolates the block-size effect (the
    # adaptive default would give 3 allocations x 2 = 6 blocks).
    return RunSpec.make(
        workload="vecadd",
        params=dict(elements=elements),
        protocol="rolling",
        layer="driver",
        protocol_options={"block_size": block_size, "rolling_size": 16},
    )


def specs(quick=False):
    """One rolling-update vecadd run per swept block size."""
    block_sizes = QUICK_BLOCK_SIZES if quick else BLOCK_SIZES
    elements = 256 * 1024 if quick else 2 * 1024 * 1024
    return [_spec(block_size, elements) for block_size in block_sizes]


def run(quick=False):
    block_sizes = QUICK_BLOCK_SIZES if quick else BLOCK_SIZES
    elements = 256 * 1024 if quick else 2 * 1024 * 1024
    rows = []
    for block_size in block_sizes:
        outcome = run_spec(_spec(block_size, elements))
        phases = outcome.phases or {}
        rows.append(
            [
                format_size(block_size),
                round(phases["cpu_to_gpu_s"] * 1e3, 3),
                round(phases["gpu_to_cpu_s"] * 1e3, 3),
                round(
                    PCIE_2_0_X16.effective_bandwidth(block_size) / GB, 3
                ),
                round(
                    PCIE_2_0_X16.effective_bandwidth(block_size, d2h=True)
                    / GB, 3
                ),
                outcome.faults,
                "yes" if outcome.verified else "NO",
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "block size",
            "CPU-to-GPU ms",
            "GPU-to-CPU ms",
            "H2D GB/s",
            "D2H GB/s",
            "faults",
            "verified",
        ],
        rows=rows,
        notes=[
            f"vector size: {elements} elements each, rolling-update, "
            "fixed rolling size 16, driver layer",
        ],
        chart_spec=("block size", ["CPU-to-GPU ms", "GPU-to-CPU ms"]),
    )
