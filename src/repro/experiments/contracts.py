"""Access-mode contracts figure: transfer volume and faults per protocol.

The declaration-driven protocol (``declared``) consumes each workload's
verified ``@access_modes`` contract to skip the transfers and faults the
modes rule out: ``ro`` objects release without invalidation (no
read-back faults after return), ``wo`` objects release without the
host-to-device flush (the kernel overwrites them anyway), and ``none``
objects — CPU-only staging buffers like mri-q's write-back window — are
left entirely alone at every release/acquire boundary.

This experiment quantifies that: every annotated workload under all four
protocols, reporting bytes moved in each direction and the page-fault
count.  The paper's Figure 6 protocols bound the comparison from below
(batch moves everything, lazy/rolling move what faults demand); the
declared column must never move *more* than lazy — its contract is
verified statically (:func:`repro.analysis.contracts.check_workload`)
and at every launch (the sanitizer's ``ContractMonitor``), so any
saving is sound by construction rather than by luck.
"""

from repro.experiments.common import parboil_spec, run_spec
from repro.experiments.spec import RunSpec
from repro.experiments.result import ExperimentResult

EXPERIMENT_ID = "contracts"
TITLE = "transfer volume and fault count per protocol (access-mode contracts)"
PAPER_CLAIM = (
    "per-object access declarations (the Section 4.3 compiler/annotation "
    "hook) let the runtime elide transfers the Figure 6 protocols must "
    "conservatively perform, without giving up coherence"
)

#: Protocol order of the figure: the three Figure 6 protocols, then the
#: declaration-driven one this experiment introduces.
PROTOCOLS = ("batch", "lazy", "rolling", "declared")

#: Annotated parboil workloads (every one carries ``@access_modes``).
_PARBOIL = ("cp", "mri-fhd", "mri-q", "pns", "tpacf")


def _extra_specs(quick):
    """The annotated non-parboil workloads: vecadd and the 3D stencil."""
    return [
        RunSpec.make(
            workload="vecadd",
            params=dict(elements=65536 if quick else 2 * 1024 * 1024),
            protocol=protocol,
            layer="driver",
        )
        for protocol in PROTOCOLS
    ] + [
        RunSpec.make(
            workload="stencil3d",
            params=dict(n=32 if quick else 64, steps=8 if quick else 20,
                        dump_interval=4 if quick else 10),
            protocol=protocol,
            layer="driver",
        )
        for protocol in PROTOCOLS
    ]


def specs(quick=False):
    """Every run of the figure: 7 annotated workloads x 4 protocols."""
    out = _extra_specs(quick)
    for name in _PARBOIL:
        for protocol in PROTOCOLS:
            out.append(parboil_spec(name, "gmac", protocol=protocol,
                                    quick=quick, layer="driver"))
    return out


def run(quick=False):
    by_workload = {}
    for spec in specs(quick):
        outcome = run_spec(spec)
        by_workload.setdefault(outcome.workload, {})[
            outcome.protocol] = outcome

    rows = []
    savings = []
    for workload in sorted(by_workload):
        outcomes = by_workload[workload]
        lazy = outcomes["lazy"]
        for protocol in PROTOCOLS:
            outcome = outcomes[protocol]
            total = outcome.bytes_to_accelerator + outcome.bytes_to_host
            lazy_total = lazy.bytes_to_accelerator + lazy.bytes_to_host
            delta = ""
            if protocol == "declared" and lazy_total:
                saved = lazy_total - total
                savings.append((workload, saved, lazy_total))
                delta = f"{-100.0 * saved / lazy_total:+.1f}%"
            rows.append([
                workload,
                protocol,
                outcome.bytes_to_accelerator,
                outcome.bytes_to_host,
                total,
                outcome.faults,
                delta,
                "yes" if outcome.verified else "NO",
            ])

    total_saved = sum(saved for _, saved, _ in savings)
    total_lazy = sum(lazy_total for _, _, lazy_total in savings)
    winners = [name for name, saved, _ in savings if saved > 0]
    notes = [
        f"declared moves {total_saved} fewer bytes than lazy overall "
        f"({100.0 * total_saved / total_lazy:.1f}% of lazy's "
        f"{total_lazy} bytes) across {len(savings)} workloads"
        if total_lazy else "no lazy traffic to compare against",
        "workloads with strict declared-vs-lazy savings: "
        + (", ".join(winners) if winners else "none"),
        "every declared run is launch-verified against the workload's "
        "@access_modes contract; outputs are byte-checked against the "
        "CPU reference",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["workload", "protocol", "bytes to acc", "bytes to host",
                 "bytes total", "faults", "vs lazy", "verified"],
        rows=rows,
        notes=notes,
    )
