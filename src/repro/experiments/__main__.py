"""CLI: regenerate paper tables/figures.

Usage::

    python -m repro.experiments fig7            # one experiment
    python -m repro.experiments all             # everything
    python -m repro.experiments fig7 --quick    # shrunk sizes
    python -m repro.experiments all --jobs 4    # parallel sweep
    python -m repro.experiments all --no-cache  # ignore the result cache
"""

import argparse
import sys
import time

from repro.experiments.registry import REGISTRY, run_experiment
from repro.experiments.executor import ExperimentExecutor, expand


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help=(
            f"experiment id ({', '.join(sorted(REGISTRY))}), 'all', or "
            "'report' to write a markdown reproduction report"
        ),
    )
    parser.add_argument(
        "--output",
        default="reproduction_report.md",
        help="output path for the 'report' mode",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunk workload sizes (shape-preserving)",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default=None,
        help=(
            "workload parameter preset: 'quick' (shrunk) or 'paper' (the "
            "full Parboil input sizes); overrides --quick's sizes and is "
            "inherited by worker processes via REPRO_SCALE"
        ),
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render figure-shaped results as ASCII log-scale charts",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the simulation sweep (default: serial)",
    )
    parser.add_argument(
        "--pool",
        choices=("persistent", "fork", "serial"),
        default="persistent",
        help=(
            "sweep engine: 'persistent' (worker pool forked once, "
            "shared-memory result plane, cost-aware dispatch), 'fork' "
            "(legacy one-shot multiprocessing.Pool baseline), or 'serial' "
            "(inline).  Engine configuration only — results and cache "
            "entries are byte-identical across all three"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the persistent result cache (neither read nor write)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=None,
        metavar="N",
        help=(
            "accelerator count for experiments with a device-count knob "
            "(failover); others reject the flag"
        ),
    )
    parser.add_argument(
        "--eager-transfers",
        action="store_true",
        help=(
            "disable the transfer ledger: every host<->device copy moves "
            "bytes eagerly at transfer time (the pre-ledger engine; "
            "DESIGN.md §14).  Engine configuration only — never part of a "
            "cache key; the CI byte-identity gate diffs this mode against "
            "the default lazy engine.  Same switch as "
            "REPRO_EAGER_TRANSFERS=1, which forked workers inherit"
        ),
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run every GMAC execution under the coherence model checker "
            "and kernel-window race detector (implies --no-cache; a "
            "violation aborts the run)"
        ),
    )
    args = parser.parse_args(argv)
    if args.scale is not None:
        # Environment, not argument threading: the spec hooks only take a
        # quick flag, and forked workers inherit the preset with the env.
        import os

        os.environ["REPRO_SCALE"] = args.scale
    from repro.util.hostalloc import retain_arena

    retain_arena()
    if args.eager_transfers:
        # Environment + module default: workers inherit the env, and Gpus
        # constructed in-process see the flipped default immediately.
        import os

        import repro.hw.gpu as gpu_module

        os.environ["REPRO_EAGER_TRANSFERS"] = "1"
        gpu_module.DEFAULT_DEFER_TRANSFERS = False
    if args.sanitize:
        # Checked results must come from checked runs, never from a cache
        # populated by unchecked ones; workers inherit the env switch.
        from repro import analysis

        analysis.enable()
        args.no_cache = True
    executor = ExperimentExecutor(
        jobs=args.jobs, use_cache=not args.no_cache, pool=args.pool,
    )
    try:
        if args.experiment == "report":
            from repro.experiments.report import SECTION_ORDER, write_report

            with executor.cache_context():
                executor.prime(expand(SECTION_ORDER, quick=args.quick))
                write_report(args.output, quick=args.quick)
            print(f"wrote {args.output}")
            return 0
        ids = (
            sorted(REGISTRY) if args.experiment == "all"
            else [args.experiment]
        )
        with executor.cache_context():
            started = time.time()  # sanitizer: allow[R003]
            stats = executor.prime(
                expand(ids, quick=args.quick, devices=args.devices)
            )
            if stats["executed"]:
                print(
                    f"(primed {stats['executed']} runs "
                    f"({stats['reused']} cached) with {args.jobs} worker(s) "
                    f"in {time.time() - started:.1f}s wall)"  # sanitizer: allow[R003]
                )
                print()
            for experiment_id in ids:
                started = time.time()  # sanitizer: allow[R003]
                result = run_experiment(
                    experiment_id, quick=args.quick, devices=args.devices
                )
                print(result.render())
                if args.chart:
                    chart = result.chart()
                    if chart is not None:
                        print()
                        print(chart)
                print(f"(regenerated in {time.time() - started:.1f}s wall)")  # sanitizer: allow[R003]
                print()
        return 0
    finally:
        executor.close()


if __name__ == "__main__":
    sys.exit(main())
