"""CLI: regenerate paper tables/figures.

Usage::

    python -m repro.experiments fig7          # one experiment
    python -m repro.experiments all           # everything
    python -m repro.experiments fig7 --quick  # shrunk sizes
"""

import argparse
import sys
import time

from repro.experiments.registry import REGISTRY, run_experiment


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help=(
            f"experiment id ({', '.join(sorted(REGISTRY))}), 'all', or "
            "'report' to write a markdown reproduction report"
        ),
    )
    parser.add_argument(
        "--output",
        default="reproduction_report.md",
        help="output path for the 'report' mode",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunk workload sizes (shape-preserving)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render figure-shaped results as ASCII log-scale charts",
    )
    args = parser.parse_args(argv)
    if args.experiment == "report":
        from repro.experiments.report import write_report

        write_report(args.output, quick=args.quick)
        print(f"wrote {args.output}")
        return 0
    ids = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        started = time.time()
        result = run_experiment(experiment_id, quick=args.quick)
        print(result.render())
        if args.chart:
            chart = result.chart()
            if chart is not None:
                print()
                print(chart)
        print(f"(regenerated in {time.time() - started:.1f}s wall)")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
