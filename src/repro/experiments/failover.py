"""Failover — surviving accelerator loss on a multi-device machine.

The chaos experiment shows ADSM surviving faults on *one* accelerator by
reviving it in place.  This experiment runs the stronger consequence of
the paper's asymmetry: with every coherence decision host-resident, the
host checkpoint is device-agnostic, so a lost accelerator's objects can
re-materialise byte-identically on a *different* device and the program
simply continues degraded.  Scenarios per workload (all on a
:data:`DEFAULT_DEVICES`-device machine):

* ``baseline``    — fault-free multi-device run: placement spreads the
  objects round-robin and the first kernel consolidates them onto its
  execution device over peer DMA;
* ``device-lost`` — the execution device dies at the first launch; its
  regions fail over onto survivors chosen by the placement policy;
* ``burst-wedge`` — a correlated transfer-fault burst wedges the link;
  the watchdog's transfer deadline expires mid-retry, the device is
  declared lost (after salvaging its device-only bytes), and the region
  set re-routes through host-canonical state;
* ``flapping``    — the execution device dies twice; after a quarantine
  the flapped devices are readmitted and the rebalancer migrates load
  back onto them.

A fifth scenario, ``exhausted``, schedules more losses than
``max_device_recoveries`` allows and demonstrates the typed
:class:`~repro.util.errors.RecoveryExhausted` surfacing as a ``gave-up``
row instead of a crash.  It runs inline (never through the worker pool,
whose prime path propagates exceptions) and is deliberately absent from
:func:`specs`.

A final section scales the fault-free baseline over 1/2/4 devices; the
single-device row is byte-identical to the classic machine, and the
bench-hotpath ``failover_overhead`` gate bounds the multi-device tax.
"""

from repro.experiments.common import params_for, run_spec
from repro.experiments.spec import RunSpec
from repro.experiments.result import ExperimentResult
from repro.util.errors import RecoveryExhausted

EXPERIMENT_ID = "failover"
TITLE = "Multi-device failover: peer ownership, watchdog, re-homing"
PAPER_CLAIM = (
    "because the coherence state lives on the host, the checkpoint it "
    "forms is device-agnostic: objects owned by a lost accelerator "
    "re-materialise byte-identically on a survivor and execution "
    "continues degraded"
)

#: Devices on the machine when ``--devices`` is not given.
DEFAULT_DEVICES = 3

#: (scenario, protocol, FaultPlan kwargs, RecoveryPolicy kwargs or None).
#: burst-wedge uses the lazy protocol so its first (wedged) transfer is
#: the release flush inside the call window, where the escalation ladder's
#: DeviceLostError is caught and failed over; its 4 ms transfer deadline
#: expires during the exponential backoff well before the 8-retry budget,
#: so the watchdog — not retry exhaustion — ends the wedge.
SCENARIOS = (
    ("baseline", "rolling", None, None),
    ("device-lost", "rolling", dict(device_lost_at_launch=1), None),
    ("burst-wedge", "lazy", dict(transfer_burst=(1, 10)),
     dict(transfer_deadline_s=4e-3)),
    ("flapping", "rolling", dict(device_lost_at_launches=(1, 3)),
     dict(readmit_after_s=5e-3)),
)

#: The inline-only exhaustion scenario (see module docstring).
EXHAUSTED = (
    "exhausted", "rolling",
    dict(device_lost_at_launches=(1, 2, 3)),
    dict(max_device_recoveries=2),
)

#: Device counts for the fault-free scaling section.
SCALING_DEVICES = (1, 2, 4)


def _workload_params(quick):
    """(name, constructor params) for the swept workloads."""
    yield "vecadd", dict(elements=256 * 1024 if quick else 2 * 1024 * 1024)
    # pns makes many kernel calls, giving the flapping scenario call
    # boundaries at which quarantined devices readmit and rebalance.
    yield "pns", params_for("pns", quick=quick)


def _spec(name, params, protocol, plan_kwargs, recovery_kwargs, devices):
    fault_plan = None
    if plan_kwargs is not None:
        fault_plan = dict(seed=17, **plan_kwargs)
    return RunSpec.make(
        workload=name,
        params=params,
        protocol=protocol,
        layer="driver",
        fault_plan=fault_plan,
        recovery=recovery_kwargs,
        devices=devices,
        placement="round-robin" if devices > 1 else None,
    )


def specs(quick=False, devices=DEFAULT_DEVICES):
    """Every poolable (workload, scenario) spec, in table order."""
    built = [
        _spec(name, params, protocol, plan_kwargs, recovery_kwargs, devices)
        for name, params in _workload_params(quick)
        for _, protocol, plan_kwargs, recovery_kwargs in SCENARIOS
    ]
    built.extend(
        _spec("vecadd",
              dict(elements=256 * 1024 if quick else 2 * 1024 * 1024),
              "rolling", None, None, n)
        for n in SCALING_DEVICES
    )
    return built


def _scenario_row(name, scenario, devices, result, baseline_elapsed):
    stats = result.recovery_stats
    overhead = (result.elapsed - baseline_elapsed) / baseline_elapsed
    return [
        name,
        scenario,
        devices,
        "yes" if result.verified else "NO",
        round(result.elapsed * 1e3, 2),
        result.injected_faults,
        stats.get("failovers", 0),
        stats.get("readmissions", 0),
        stats.get("rebalances", 0),
        stats.get("blocks_salvaged", 0),
        len(stats.get("watchdog_trips", ())),
        result.peer_bytes // 1024,
        f"{overhead:+.1%}",
    ]


def run(quick=False, devices=None):
    devices = DEFAULT_DEVICES if devices is None else int(devices)
    rows = []
    all_verified = True
    gave_up = None
    for name, params in _workload_params(quick):
        baseline_elapsed = None
        for scenario, protocol, plan_kwargs, recovery_kwargs in SCENARIOS:
            result = run_spec(_spec(
                name, params, protocol, plan_kwargs, recovery_kwargs, devices
            ))
            all_verified = all_verified and result.verified
            if scenario == "baseline":
                baseline_elapsed = result.elapsed
            rows.append(_scenario_row(
                name, scenario, devices, result, baseline_elapsed
            ))
        if name == "vecadd":
            # The exhaustion scenario must raise; run it inline so the
            # typed error becomes a report row rather than a crash.
            scenario, protocol, plan_kwargs, recovery_kwargs = EXHAUSTED
            try:
                result = run_spec(_spec(
                    name, params, protocol, plan_kwargs, recovery_kwargs,
                    devices,
                ))
                rows.append(_scenario_row(
                    name, scenario, devices, result, baseline_elapsed
                ))
                all_verified = False  # it was supposed to give up
            except RecoveryExhausted as error:
                gave_up = error
                rows.append([
                    name, scenario, devices, "gave-up", "-", "-", "-", "-",
                    "-", "-", "-", "-",
                    f"{error.attempts} losses",
                ])
    scale_base = None
    for n in SCALING_DEVICES:
        result = run_spec(_spec(
            "vecadd",
            dict(elements=256 * 1024 if quick else 2 * 1024 * 1024),
            "rolling", None, None, n,
        ))
        all_verified = all_verified and result.verified
        if scale_base is None:
            scale_base = result.elapsed
        rows.append(_scenario_row(
            "vecadd", f"scale-{n}dev", n, result, scale_base
        ))
    notes = [
        "driver abstraction layer; round-robin placement; one "
        "deterministic fault seed shared by all scenarios",
        "peer KB counts region migrations between devices (consolidation "
        "onto the execution device, post-readmission rebalancing); "
        "failover re-homing moves through host-canonical state instead",
        "trips are watchdog deadline expirations (declare-device-lost, "
        "observed kernel overruns); salvaged counts device-only blocks "
        "pulled home before abandoning a wedged device",
        "overhead is elapsed-time inflation over the same-device-count "
        "baseline (scale rows: over the 1-device run)",
    ]
    if gave_up is not None:
        notes.append(
            "exhausted scenario gave up as designed: "
            f"RecoveryExhausted after {gave_up.attempts} device losses "
            f"(resource {gave_up.resource})"
        )
    else:
        notes.append(
            "WARNING: the exhausted scenario did not raise RecoveryExhausted"
        )
    if not all_verified:
        notes.append("WARNING: at least one run failed oracle validation")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "workload", "scenario", "devices", "verified", "elapsed ms",
            "injected", "failovers", "readmits", "rebalances", "salvaged",
            "trips", "peer KB", "overhead",
        ],
        rows=rows,
        notes=notes,
    )
