"""The common result type every experiment returns, plus artifact stamps."""

import csv
import io
import json
import pathlib
from dataclasses import dataclass, field

from repro.util.tables import render_table


def environment_stamp():
    """Provenance for benchmark artifacts: commit, devices, backend, scale.

    Regression comparisons are only meaningful between runs of the same
    engine configuration; the stamp records the configuration a number was
    measured under so a mismatch is visible in the artifact itself.  Both
    ``bench_hotpath`` and ``bench_executor`` stamp their JSON with this.
    """
    import subprocess as sp

    repo_root = pathlib.Path(__file__).resolve().parents[3]
    try:
        commit = sp.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=repo_root, check=True,
        ).stdout.strip()
    except (OSError, sp.CalledProcessError):
        commit = "unknown"
    from repro.cuda.backend import active_backend
    from repro.experiments.common import active_scale
    from repro.hw.specs import GTX280, OPTERON_2222, PCIE_2_0_X16
    from repro.util.hostalloc import arena_retained

    return {
        "commit": commit,
        "backend": active_backend(),
        # No REPRO_SCALE override means the quick presets are in effect.
        "scale": active_scale() or "quick",
        "devices": {
            "cpu": OPTERON_2222.name,
            "gpu": GTX280.name,
            "link": PCIE_2_0_X16.name,
        },
        "arena_retained": arena_retained(),
    }


@dataclass
class ExperimentResult:
    """One regenerated paper artifact: a table plus context."""

    experiment_id: str
    title: str
    paper_claim: str
    headers: list
    rows: list
    notes: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    #: Optional (x_header, [y_headers]) for ASCII chart rendering of
    #: figure-shaped results (Figures 9, 11, 12).
    chart_spec: tuple = None

    def render(self):
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper: {self.paper_claim}",
            "",
            render_table(self.headers, self.rows),
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def chart(self, height=12):
        """Render the result as a log-scale ASCII chart, if chartable."""
        if self.chart_spec is None:
            return None
        from repro.util.charts import chart_from_result

        x_header, y_headers = self.chart_spec
        return chart_from_result(self, x_header, y_headers, height=height)

    def column(self, header):
        """All values of one column, by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_map(self, key_header="benchmark"):
        """Rows indexed by the value of one column."""
        index = self.headers.index(key_header)
        return {row[index]: row for row in self.rows}

    # -- serialization (for downstream plotting / regression tracking) --------

    def to_json(self):
        """A JSON document with the full table and metadata."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "paper_claim": self.paper_claim,
                "headers": list(self.headers),
                "rows": [list(row) for row in self.rows],
                "notes": list(self.notes),
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text):
        """Inverse of :meth:`to_json` (notes and table only)."""
        data = json.loads(text)
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            paper_claim=data["paper_claim"],
            headers=data["headers"],
            rows=data["rows"],
            notes=data.get("notes", []),
        )

    def to_csv(self):
        """The table as CSV text (headers + rows, no metadata)."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return out.getvalue()
