"""The run-spec model: one simulation run as a hashable value.

Every experiment in the registry is a projection of independent simulation
runs — (workload, parameters, mode, protocol, layer, options, machine,
fault plan).  :class:`RunSpec` captures one such run as a frozen, picklable
value with a canonical key, which is what makes the executor possible:

* **fan-out** — specs cross process boundaries to worker pools untouched;
* **dedup** — figures sharing a configuration (fig7/fig8 protocols,
  fig10/chaos baselines) share the single run for it;
* **caching** — the canonical key plus a source fingerprint addresses a
  persistent on-disk result cache (:mod:`repro.experiments.cache`).

Executing a spec yields a :class:`SpecOutcome`: the picklable summary of a
:class:`~repro.workloads.base.WorkloadResult`, carrying everything any
experiment table reads (timings, break-down, byte counters, phases,
recovery statistics) but none of the live simulator objects.
"""

import copy
import gc
import json
from dataclasses import dataclass, field, asdict

from repro.workloads.parboil import PARBOIL
from repro.workloads.vecadd import VectorAdd
from repro.workloads.stencil3d import Stencil3D

#: Workload name -> constructor.  Parboil names plus the micro-benchmarks
#: the figure sweeps use; params in a spec are constructor kwargs.
WORKLOAD_FACTORIES = dict(PARBOIL)
WORKLOAD_FACTORIES["vecadd"] = VectorAdd
WORKLOAD_FACTORIES["stencil3d"] = Stencil3D


def _link_presets():
    """Named per-device link specs usable in a spec's ``link_specs``."""
    from repro.hw.specs import HYPERTRANSPORT, PCIE_2_0_X16, QPI

    return {
        "pcie2x16": PCIE_2_0_X16,
        "hypertransport": HYPERTRANSPORT,
        "qpi": QPI,
    }


def _as_items(mapping):
    """Normalize an options dict to a sorted, hashable tuple of pairs."""
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run, as a value."""

    workload: str
    params: tuple = ()            # constructor kwargs, sorted pairs
    mode: str = "gmac"            # "cuda", "cuda-db" or "gmac"
    protocol: str = "rolling"     # "-" for non-gmac modes
    layer: str = "runtime"        # gmac abstraction layer
    protocol_options: tuple = ()  # sorted pairs
    peer_dma: bool = False
    machine: str = "reference"    # "reference" or "integrated"
    fault_plan: tuple = None      # FaultPlan kwargs (sorted pairs) or None
    recovery: tuple = None        # RecoveryPolicy kwargs, with fault_plan only
    devices: int = 1              # accelerator count (multi-device when > 1)
    link_specs: tuple = ()        # per-device link preset names, or ()
    placement: str = "-"          # placement policy name; "-" when devices=1
    backend: str = "numpy"        # kernel-numerics backend (cuda/backend.py)

    @classmethod
    def make(cls, workload, params=None, mode="gmac", protocol="rolling",
             layer="runtime", protocol_options=None, peer_dma=False,
             machine="reference", fault_plan=None, recovery=None,
             devices=1, link_specs=None, placement=None, backend=None):
        """Build a normalized spec.

        Non-gmac modes ignore every GMAC knob, so those collapse to
        sentinels — a cuda run requested "with" any protocol is the same
        run, and hashes (and caches) identically.  The same applies to the
        topology knobs: link specs and placement only exist on multi-device
        machines, so with ``devices=1`` they collapse too.
        """
        if workload not in WORKLOAD_FACTORIES:
            raise KeyError(f"unknown workload {workload!r}")
        if mode != "gmac":
            protocol = "-"
            layer = "-"
            protocol_options = None
            peer_dma = False
            devices = 1
        devices = int(devices)
        if devices < 1:
            raise ValueError(f"devices must be >= 1, got {devices}")
        if devices == 1:
            link_specs = None
            placement = "-"
        else:
            if machine == "integrated":
                raise ValueError(
                    "multi-device runs need discrete accelerators; "
                    "machine='integrated' only models one"
                )
            if placement is None:
                placement = "round-robin"
            link_specs = tuple(link_specs or ())
            presets = _link_presets()
            for name in link_specs:
                if name not in presets:
                    raise KeyError(
                        f"unknown link preset {name!r}; "
                        f"pick from {sorted(presets)}"
                    )
            if link_specs and len(link_specs) != devices:
                raise ValueError(
                    f"link_specs names {len(link_specs)} links for "
                    f"{devices} devices"
                )
        if fault_plan is None:
            recovery = None
        if backend is None:
            # The backend actually in effect for this process: a numba
            # sweep must never share cache entries with a numpy one.
            from repro.cuda.backend import active_backend

            backend = active_backend()
        return cls(
            workload=workload,
            params=_as_items(params),
            mode=mode,
            protocol=protocol,
            layer=layer,
            protocol_options=_as_items(protocol_options),
            peer_dma=bool(peer_dma),
            machine=machine,
            fault_plan=_as_items(fault_plan) if fault_plan is not None else None,
            recovery=_as_items(recovery) if recovery is not None else None,
            devices=devices,
            link_specs=tuple(link_specs or ()),
            placement=placement,
            backend=backend,
        )

    def key(self):
        """Canonical JSON key (stable across processes and sessions)."""
        fields = asdict(self)
        # The numpy backend is the baseline every existing key was minted
        # under; only a non-default backend joins the key, so historical
        # cache entries (and golden key fixtures) stay addressable.
        if fields.get("backend") == "numpy":
            del fields["backend"]
        return json.dumps(fields, sort_keys=True, default=str)

    def cost_hint(self):
        """Spec-declared relative execution cost, for dispatch ordering.

        Used by the executor's cost-aware scheduler only when no recorded
        timing exists for this spec (a cold timings file).  Numeric
        constructor parameters are input sizes — the dominant host-cost
        driver — so their sum ranks configurations well enough to put the
        long runs first; device count multiplies (each device adds links,
        heaps and placement work).  Never part of the key or the outcome:
        a wrong hint can only misorder the dispatch queue.
        """
        total = 1.0
        for _, value in self.params:
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                total += abs(float(value))
        return total * self.devices

    def _build_machine(self):
        from repro.hw.machine import (
            integrated_system, multi_device_system, reference_system,
        )

        if self.devices > 1:
            presets = _link_presets()
            link_specs = (
                [presets[name] for name in self.link_specs]
                if self.link_specs else None
            )
            return multi_device_system(
                devices=self.devices, link_specs=link_specs
            )
        if self.machine == "reference":
            return reference_system()
        if self.machine == "integrated":
            return integrated_system()
        raise KeyError(f"unknown machine kind {self.machine!r}")

    def execute(self):
        """Run this spec on a fresh machine; returns a :class:`SpecOutcome`."""
        machine = self._build_machine()
        plan = None
        if self.fault_plan is not None:
            from repro.faults import FaultPlan

            plan = machine.install_faults(FaultPlan(**dict(self.fault_plan)))
        workload = WORKLOAD_FACTORIES[self.workload](**dict(self.params))
        gmac_options = None
        if self.mode == "gmac":
            gmac_options = {"layer": self.layer}
            if self.protocol_options:
                gmac_options["protocol_options"] = dict(self.protocol_options)
            if self.peer_dma:
                gmac_options["peer_dma"] = True
            if self.devices > 1:
                gmac_options["placement"] = self.placement
            if plan is not None:
                from repro.core.recovery import RecoveryPolicy

                gmac_options["recovery"] = RecoveryPolicy(
                    **dict(self.recovery or ())
                )
        result = workload.execute(
            mode=self.mode,
            protocol=self.protocol,
            machine=machine,
            gmac_options=gmac_options,
        )
        gmac = result.extra.get("gmac")
        recovery_stats = {}
        if gmac is not None and gmac.recovery is not None:
            recovery_stats = copy.deepcopy(gmac.recovery.stats)
        outcome = SpecOutcome(
            spec=self,
            workload=result.workload,
            mode=result.mode,
            protocol=result.protocol,
            elapsed=result.elapsed,
            breakdown=dict(result.breakdown),
            bytes_to_accelerator=result.bytes_to_accelerator,
            bytes_to_host=result.bytes_to_host,
            faults=result.faults,
            signals=result.signals,
            verified=result.verified,
            phases=dict(getattr(workload, "phases", None) or {}) or None,
            recovery_stats=recovery_stats,
            injected_faults=plan.injected_total if plan is not None else 0,
            link_bytes_moved=self._aggregate_link_bytes(machine),
            peer_bytes=(
                gmac.manager.peer_bytes if gmac is not None else 0
            ),
        )
        # The run's object graph is cyclic (signal handlers, observer
        # hooks, protocol back-pointers), so its tens of megabytes of
        # backing buffers otherwise linger until a full garbage collection
        # — and every subsequent run re-pays minor page faults for its
        # whole working set.  Dropping the graph here and sweeping the
        # young generations frees the buffers deterministically; with the
        # retained malloc arena (:mod:`repro.util.hostalloc`) the next
        # run then reuses warm pages.  A full ``gc.collect()`` would walk
        # the memo caches too and costs more than it saves.
        del result, workload, gmac, machine, plan
        gc.collect(1)
        return outcome

    @staticmethod
    def _aggregate_link_bytes(machine):
        """Per-direction byte totals summed over every device link."""
        moved = {}
        for link in machine.links:
            for direction, count in link.bytes_moved.items():
                key = str(direction)
                moved[key] = moved.get(key, 0) + count
        return moved


@dataclass
class SpecOutcome:
    """The picklable summary of one executed :class:`RunSpec`.

    Mirrors the fields experiments read off a
    :class:`~repro.workloads.base.WorkloadResult`, plus the derived values
    (workload phases, recovery statistics, injected-fault and link-byte
    counts) that previously required reaching into live ``extra`` objects.
    """

    spec: RunSpec
    workload: str
    mode: str
    protocol: str
    elapsed: float
    breakdown: dict
    bytes_to_accelerator: int
    bytes_to_host: int
    faults: int
    signals: int
    verified: bool
    phases: dict = None
    recovery_stats: dict = field(default_factory=dict)
    injected_faults: int = 0
    link_bytes_moved: dict = field(default_factory=dict)
    peer_bytes: int = 0

    @property
    def label(self):
        if self.mode != "gmac":
            return self.mode.upper()
        return f"GMAC {self.protocol}"

    def canonical_bytes(self):
        """Deterministic serialization for byte-identity comparisons.

        Raw ``pickle.dumps`` of two semantically equal outcomes can differ
        when their object graphs share strings differently (a spec that
        crossed a process boundary no longer shares interned strings with
        its outcome), so byte-identity is defined over this canonical
        form: JSON with sorted keys, which encodes values only — floats
        via shortest round-trip repr, so equality here is exact equality
        of every number.
        """
        return json.dumps(
            asdict(self), sort_keys=True, default=repr,
            separators=(",", ":"),
        ).encode()
