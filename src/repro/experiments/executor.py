"""The sweep-execution engine: fan runs out, merge results in order.

Every registered experiment can expand itself into a flat list of
independent :class:`~repro.experiments.spec.RunSpec` values (its
``specs(quick)`` hook).  The executor:

1. **expands** the requested experiments into one deduplicated, ordered
   spec list (figures sharing a configuration share the run);
2. **primes** the caches — specs already present in either cache layer are
   skipped, the rest execute on a ``multiprocessing`` pool (``jobs > 1``)
   or inline (``jobs <= 1``), each worker building its own simulated
   machine from the spec;
3. **merges deterministically** — ``Pool.map`` returns outcomes in
   submission order regardless of completion order, and the merge deposits
   them spec-by-spec, so a parallel sweep leaves the caches (and therefore
   every rendered table) byte-identical to a serial one.

The experiments themselves then run unmodified: their ``run()`` functions
call :func:`repro.experiments.common.run_spec`, which finds every outcome
already in memory.
"""

import multiprocessing

from repro.experiments import common
from repro.experiments.registry import REGISTRY, run_experiment


def _execute_spec(spec):
    """Worker entry point: one spec, one fresh machine (no caching here)."""
    return spec.execute()


def expand(experiment_ids, quick=False, devices=None):
    """Ordered, deduplicated specs for ``experiment_ids``.

    Experiments without a ``specs`` hook (fig2, tab2, porting, motivation
    and other inline/API-level experiments) contribute nothing and simply
    run serially inside their ``run()``.  ``devices`` is forwarded to the
    hooks that take it (failover), so a ``--devices`` sweep primes the
    same specs its tables will read.
    """
    import inspect

    specs = []
    seen = set()
    for experiment_id in experiment_ids:
        module = REGISTRY[experiment_id]
        hook = getattr(module, "specs", None)
        if hook is None:
            continue
        kwargs = {"quick": quick}
        if (devices is not None
                and "devices" in inspect.signature(hook).parameters):
            kwargs["devices"] = devices
        for spec in hook(**kwargs):
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    return specs


class ExperimentExecutor:
    """Runs experiment sweeps over a worker pool with shared caches."""

    def __init__(self, jobs=1, use_cache=True, cache_dir=None):
        self.jobs = max(1, int(jobs))
        if not use_cache:
            self.cache = None
        elif cache_dir is not None:
            from repro.experiments.cache import ResultCache

            self.cache = ResultCache(cache_dir)
        else:
            self.cache = common.persistent_cache()
        self.stats = {"expanded": 0, "reused": 0, "executed": 0}

    def cache_context(self):
        """Context manager installing this executor's persistent cache."""
        return common.using_cache(self.cache)

    def prime(self, specs):
        """Ensure every spec's outcome is in the caches; returns stats.

        Call inside :meth:`cache_context` (the run/run_many entry points
        do).  Outcomes of missing specs are merged in spec order, so the
        resulting cache state is independent of worker scheduling.
        """
        from repro.util.hostalloc import retain_arena

        retain_arena()
        missing = [spec for spec in specs if common.peek(spec) is None]
        if missing:
            if self.jobs > 1 and len(missing) > 1:
                self._warm_shared_inputs(missing)
                outcomes = self._pool_map(missing)
            else:
                outcomes = [spec.execute() for spec in missing]
            for spec, outcome in zip(missing, outcomes):
                common.store(spec, outcome)
        self.stats = {
            "expanded": len(specs),
            "reused": len(specs) - len(missing),
            "executed": len(missing),
        }
        return self.stats

    @staticmethod
    def _warm_shared_inputs(specs):
        """Build memoized inputs/oracles in the parent before forking.

        Workload constructors generate their input arrays deterministically
        into a process-global memo; building each distinct configuration
        once here means forked workers inherit the arrays as copy-on-write
        pages — the zero-copy plane — instead of regenerating them (the
        arrays never cross the pool boundary, so nothing is re-pickled).
        A configuration that fails to warm simply builds in its worker.
        """
        from repro.experiments.spec import WORKLOAD_FACTORIES

        seen = set()
        for spec in specs:
            key = (spec.workload, spec.params)
            if key in seen:
                continue
            seen.add(key)
            try:
                workload = WORKLOAD_FACTORIES[spec.workload](
                    **dict(spec.params)
                )
                workload._reference_outputs()
            except Exception:
                pass

    def _pool_map(self, specs):
        # Fork shares the parent's imported modules (cheap workers); fall
        # back to the platform default where fork is unavailable.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        processes = min(self.jobs, len(specs))
        with context.Pool(processes=processes) as pool:
            return pool.map(_execute_spec, specs)

    def run(self, experiment_id, quick=False):
        """Prime and run one experiment; returns its ExperimentResult."""
        with self.cache_context():
            self.prime(expand([experiment_id], quick=quick))
            return run_experiment(experiment_id, quick=quick)

    def run_many(self, experiment_ids, quick=False):
        """Prime the union of sweeps, then run each experiment in order."""
        with self.cache_context():
            self.prime(expand(experiment_ids, quick=quick))
            return [
                (experiment_id, run_experiment(experiment_id, quick=quick))
                for experiment_id in experiment_ids
            ]
