"""The sweep-execution engine: fan runs out, merge results in order.

Every registered experiment can expand itself into a flat list of
independent :class:`~repro.experiments.spec.RunSpec` values (its
``specs(quick)`` hook).  The executor:

1. **expands** the requested experiments into one deduplicated, ordered
   spec list (figures sharing a configuration share the run);
2. **primes** the caches — warm specs short-circuit in the parent without
   touching a worker, and the rest execute on the configured pool:

   * ``persistent`` (default) — the worker-pool engine in
     :mod:`repro.experiments.pool`: workers forked once per executor
     lifetime after the parent pre-warm, specs dispatched one at a time
     longest-expected-first (recorded timings from the result cache's
     metadata, falling back to the spec-declared :meth:`RunSpec.cost_hint`),
     outcomes returned through a shared-memory result plane, crashed
     workers respawned with their in-flight spec requeued exactly once;
   * ``fork`` — the legacy one-shot ``multiprocessing.Pool.map`` (kept as
     a baseline; degrades to serial where fork is unavailable);
   * ``serial`` — inline execution;

3. **merges deterministically** — outcomes commit to the caches as they
   land and the merge restores spec order at the end, so any pool shape
   leaves the caches (and therefore every rendered table) byte-identical
   to a serial sweep.  The pool shape is *engine* configuration: it never
   joins a :class:`RunSpec` or its cache key.

The experiments themselves then run unmodified: their ``run()`` functions
call :func:`repro.experiments.common.run_spec`, which finds every outcome
already in memory.
"""

import multiprocessing
import time

from repro.experiments import common
from repro.experiments.registry import REGISTRY, run_experiment
from repro.sim.tracing import HostCounters

#: The executor's pool shapes (the CLI's ``--pool`` choices).
POOL_KINDS = ("persistent", "fork", "serial")


def _execute_spec(spec):
    """Worker entry point: one spec, one fresh machine (no caching here)."""
    return spec.execute()


def expand(experiment_ids, quick=False, devices=None):
    """Ordered, deduplicated specs for ``experiment_ids``.

    Experiments without a ``specs`` hook (fig2, tab2, porting, motivation
    and other inline/API-level experiments) contribute nothing and simply
    run serially inside their ``run()``.  ``devices`` is forwarded to the
    hooks that take it (failover), so a ``--devices`` sweep primes the
    same specs its tables will read.
    """
    import inspect

    specs = []
    seen = set()
    for experiment_id in experiment_ids:
        module = REGISTRY[experiment_id]
        hook = getattr(module, "specs", None)
        if hook is None:
            continue
        kwargs = {"quick": quick}
        if (devices is not None
                and "devices" in inspect.signature(hook).parameters):
            kwargs["devices"] = devices
        for spec in hook(**kwargs):
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    return specs


class ExperimentExecutor:
    """Runs experiment sweeps over a worker pool with shared caches."""

    def __init__(self, jobs=1, use_cache=True, cache_dir=None,
                 pool="persistent"):
        if pool not in POOL_KINDS:
            raise ValueError(
                f"unknown pool kind {pool!r}; pick from {POOL_KINDS}"
            )
        self.jobs = max(1, int(jobs))
        self.pool_kind = pool
        if not use_cache:
            self.cache = None
        elif cache_dir is not None:
            from repro.experiments.cache import ResultCache

            self.cache = ResultCache(cache_dir)
        else:
            self.cache = common.persistent_cache()
        self.stats = {"expanded": 0, "reused": 0, "executed": 0}
        self.counters = HostCounters()
        self._pool = None

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def cache_context(self):
        """Context manager installing this executor's persistent cache."""
        return common.using_cache(self.cache)

    # -- priming -------------------------------------------------------------

    def prime(self, specs):
        """Ensure every spec's outcome is in the caches; returns stats.

        Call inside :meth:`cache_context` (the run/run_many entry points
        do).  Outcomes land streaming but the merge restores spec order,
        so the resulting cache state is independent of worker scheduling
        and of the pool shape.
        """
        from repro.util.hostalloc import retain_arena

        retain_arena()
        missing = [spec for spec in specs if common.peek(spec) is None]
        # Cache-aware dispatch: warm specs never reach a worker.
        self.counters.increment("warm_hits", len(specs) - len(missing))
        if missing:
            parallel = (
                self.jobs > 1 and len(missing) > 1
                and self.pool_kind != "serial"
            )
            if parallel:
                from repro.experiments import pool as pool_engine

                pool_engine.rebuild_memoized_inputs(
                    pool_engine.distinct_configs(missing)
                )
                if self.pool_kind == "fork":
                    self._legacy_pool_prime(missing)
                else:
                    self._persistent_prime(missing)
            else:
                self._serial_prime(missing)
        self.stats = {
            "expanded": len(specs),
            "reused": len(specs) - len(missing),
            "executed": len(missing),
        }
        return self.stats

    def _serial_prime(self, missing):
        timings = {}
        for spec in missing:
            started = time.perf_counter()  # sanitizer: allow[R003]
            outcome = spec.execute()
            timings[spec] = time.perf_counter() - started  # sanitizer: allow[R003]
            common.store(spec, outcome)
        self._record_timings(timings)

    def _legacy_pool_prime(self, missing):
        """The pre-engine baseline: one fork pool per sweep, pickle pipes."""
        if "fork" not in multiprocessing.get_all_start_methods():
            # A spawn-only platform would lose the parent pre-warm in every
            # pool child and recompute inputs per chunk; run inline instead
            # of paying that silently (the persistent engine rebuilds
            # per-worker and is the right shape there).
            self.counters.increment("degraded_serial")
            self._serial_prime(missing)
            return
        context = multiprocessing.get_context("fork")
        processes = min(self.jobs, len(missing))
        with context.Pool(processes=processes) as worker_pool:
            outcomes = worker_pool.map(_execute_spec, missing)
        for spec, outcome in zip(missing, outcomes):
            common.store(spec, outcome)

    def _persistent_prime(self, missing):
        """Dispatch ``missing`` on the persistent engine, streaming merge."""
        from repro.experiments.pool import StreamingMerge

        engine = self._ensure_pool(missing)
        merge = StreamingMerge(missing, commit=common.store)
        timings = {}

        def on_result(seq, outcome, host_s):
            first = merge.deposit(seq, outcome)
            if first:
                timings[missing[seq]] = host_s
            return first

        engine.run(self._cost_ordered(missing), on_result)
        merge.ordered()  # every seq landed; order restored
        self._record_timings(timings)

    def _ensure_pool(self, missing):
        """The live persistent pool (workers fork once per executor)."""
        from repro.experiments.pool import (
            PersistentWorkerPool, distinct_configs,
        )

        if self._pool is not None and not self._pool.started:
            self._pool = None
        if self._pool is None:
            self._pool = PersistentWorkerPool(
                jobs=self.jobs, counters=self.counters,
            )
            self._pool.start(configs=distinct_configs(missing))
        return self._pool

    # -- cost-aware scheduling ------------------------------------------------

    def _cost_ordered(self, specs):
        """``(seq, spec)`` pairs, longest-expected-first.

        Expected cost is the last recorded host-seconds for the spec from
        the result cache's timing metadata; a spec never timed falls back
        to its declared :meth:`~repro.experiments.spec.RunSpec.cost_hint`.
        Scheduling long runs first minimizes the idle tail; the sort is
        stable, so equal-cost specs keep spec order and the merge stays
        deterministic regardless.
        """
        recorded = self.cache.timings() if self.cache is not None else {}

        def expected(spec):
            if recorded:
                from repro.experiments.cache import ResultCache

                seconds = recorded.get(ResultCache.timing_key(spec))
                if seconds is not None:
                    # Recorded timings are host seconds; cost hints are
                    # unitless sizes.  Rank within each population only —
                    # mixing is fine because both orderings put big first.
                    return seconds
            return spec.cost_hint()

        return sorted(
            enumerate(specs), key=lambda pair: expected(pair[1]),
            reverse=True,
        )

    def _record_timings(self, timings):
        """Persist per-spec host-seconds as scheduling metadata."""
        if self.cache is None or not timings:
            return
        from repro.experiments.cache import ResultCache

        self.cache.record_timings({
            ResultCache.timing_key(spec): seconds
            for spec, seconds in timings.items()
        })

    # -- entry points ----------------------------------------------------------

    def run(self, experiment_id, quick=False):
        """Prime and run one experiment; returns its ExperimentResult."""
        with self.cache_context():
            self.prime(expand([experiment_id], quick=quick))
            return run_experiment(experiment_id, quick=quick)

    def run_many(self, experiment_ids, quick=False):
        """Prime the union of sweeps, then run each experiment in order."""
        with self.cache_context():
            self.prime(expand(experiment_ids, quick=quick))
            return [
                (experiment_id, run_experiment(experiment_id, quick=quick))
                for experiment_id in experiment_ids
            ]
