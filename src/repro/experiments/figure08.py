"""Figure 8 — data transferred by lazy/rolling, normalized to batch-update.

"Figure 8 shows data transferred by lazy-update and rolling-update
normalized to the data transferred by batch-update ... Fine-grained
handling of shared objects in rolling-update avoids some unnecessary data
transfers (i.e. mri-q)."
"""

from repro.experiments.common import run_parboil, parboil_spec
from repro.experiments.result import ExperimentResult
from repro.workloads.parboil import PARBOIL

EXPERIMENT_ID = "fig8"
TITLE = "bytes moved per protocol, normalized to batch-update"
PAPER_CLAIM = (
    "lazy and rolling move a small fraction of what batch moves, in both "
    "directions; rolling moves less than lazy where CPU access is partial "
    "(mri-q)"
)


def specs(quick=False):
    """One gmac run per (benchmark, protocol); shared with Figure 7."""
    return [
        parboil_spec(name, "gmac", protocol=protocol, quick=quick)
        for name in PARBOIL
        for protocol in ("batch", "lazy", "rolling")
    ]


def run(quick=False):
    rows = []
    for name in PARBOIL:
        batch = run_parboil(name, "gmac", protocol="batch", quick=quick)
        row = [name]
        for protocol in ("lazy", "rolling"):
            result = run_parboil(name, "gmac", protocol=protocol, quick=quick)
            row.append(
                round(result.bytes_to_accelerator
                      / max(batch.bytes_to_accelerator, 1), 4)
            )
            row.append(
                round(result.bytes_to_host / max(batch.bytes_to_host, 1), 4)
            )
        rows.append(row)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "benchmark",
            "lazy h2d/batch",
            "lazy d2h/batch",
            "rolling h2d/batch",
            "rolling d2h/batch",
        ],
        rows=rows,
    )
