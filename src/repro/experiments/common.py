"""Shared plumbing for the experiment modules.

Figures 7, 8 and 10 are different projections of the same Parboil runs;
every experiment now phrases its runs as
:class:`~repro.experiments.spec.RunSpec` values and obtains outcomes
through :func:`run_spec`, which layers two caches:

* an **in-memory** map (spec -> outcome), so repeated lookups within one
  process return the identical object, and
* an optional **persistent** :class:`~repro.experiments.cache.ResultCache`
  (on by default; disable with ``REPRO_RESULT_CACHE=0`` or ``--no-cache``),
  so figures, ablations, chaos and benchmarks share completed runs across
  invocations until the simulator sources change.

The executor (:mod:`repro.experiments.executor`) primes both layers from a
worker pool; the experiment modules themselves never notice.
"""

import contextlib
import os

from repro.util.units import KB, MB
from repro.workloads.parboil import PARBOIL
from repro.experiments.spec import RunSpec

#: Shrunk workload parameters for test runs (shape-preserving).
QUICK_PARAMS = {
    "cp": dict(grid_n=96, n_atoms=48),
    "mri-fhd": dict(n_samples=4096, n_voxels=64),
    # Q must span several 256KB blocks for the rolling-vs-lazy read-back
    # contrast to exist, so the voxel count stays at its default.
    "mri-q": dict(n_samples=48, n_voxels=65536),
    "pns": dict(n_places=(1 * MB) // 4, iterations=48, sample_interval=8),
    "rpes": dict(n_integrals=64 * 1024, n_roots=16),
    "sad": dict(width=128, height=128, search=4),
    "tpacf": dict(n_points=131072),
}

#: The protocol order of Figures 7 and 8.
PROTOCOL_ORDER = ("batch", "lazy", "rolling")

#: In-memory outcomes; same spec -> the identical outcome object.
_memory = {}

#: Persistent cache: the sentinel means "build the default lazily".
_DEFAULT = object()
_persistent = _DEFAULT


def make_workload(name, quick=False):
    cls = PARBOIL[name]
    if quick:
        return cls(**QUICK_PARAMS[name])
    return cls()


def parboil_spec(name, mode, protocol="rolling", quick=False, layer="runtime",
                 protocol_options=None):
    """The :class:`RunSpec` for one Parboil configuration."""
    return RunSpec.make(
        workload=name,
        params=QUICK_PARAMS[name] if quick else None,
        mode=mode,
        protocol=protocol,
        layer=layer,
        protocol_options=protocol_options,
    )


def persistent_cache():
    """The active persistent cache, or None when caching is disabled."""
    global _persistent
    if _persistent is _DEFAULT:
        if os.environ.get("REPRO_RESULT_CACHE", "1") == "0":
            _persistent = None
        else:
            from repro.experiments.cache import ResultCache

            _persistent = ResultCache()
    return _persistent


def set_persistent_cache(cache):
    """Install ``cache`` (a ResultCache or None to disable) process-wide."""
    global _persistent
    _persistent = cache


@contextlib.contextmanager
def using_cache(cache):
    """Temporarily swap the persistent cache (None disables)."""
    global _persistent
    previous = _persistent
    _persistent = cache
    try:
        yield cache
    finally:
        _persistent = previous


def peek(spec):
    """The outcome for ``spec`` if either cache layer holds it, else None.

    A persistent hit is promoted into the in-memory layer, so subsequent
    :func:`run_spec` calls return the identical object.
    """
    outcome = _memory.get(spec)
    if outcome is not None:
        return outcome
    cache = persistent_cache()
    if cache is None:
        return None
    outcome = cache.get(spec)
    if outcome is not None:
        _memory[spec] = outcome
    return outcome


def store(spec, outcome):
    """Deposit an outcome into both cache layers (executor merge path)."""
    _memory[spec] = outcome
    cache = persistent_cache()
    if cache is not None:
        cache.put(spec, outcome)
    return outcome


def run_spec(spec):
    """Run (or recall) one spec; returns its SpecOutcome."""
    outcome = peek(spec)
    if outcome is None:
        outcome = store(spec, spec.execute())
    return outcome


def run_parboil(name, mode, protocol="rolling", quick=False, layer="runtime",
                protocol_options=None):
    """Run (and cache) one Parboil configuration."""
    return run_spec(parboil_spec(
        name, mode, protocol=protocol, quick=quick, layer=layer,
        protocol_options=protocol_options,
    ))


def clear_cache():
    """Drop the in-memory layer (the persistent cache is untouched)."""
    _memory.clear()
