"""Shared plumbing for the experiment modules.

Figures 7, 8 and 10 are different projections of the same Parboil runs;
every experiment now phrases its runs as
:class:`~repro.experiments.spec.RunSpec` values and obtains outcomes
through :func:`run_spec`, which layers two caches:

* an **in-memory** map (spec -> outcome), so repeated lookups within one
  process return the identical object, and
* an optional **persistent** :class:`~repro.experiments.cache.ResultCache`
  (on by default; disable with ``REPRO_RESULT_CACHE=0`` or ``--no-cache``),
  so figures, ablations, chaos and benchmarks share completed runs across
  invocations until the simulator sources change.

The executor (:mod:`repro.experiments.executor`) primes both layers from a
worker pool; the experiment modules themselves never notice.
"""

import contextlib
import os

from repro.util.units import KB, MB
from repro.workloads.parboil import PARBOIL
from repro.experiments.spec import RunSpec

#: Shrunk workload parameters for test runs (shape-preserving).
QUICK_PARAMS = {
    "cp": dict(grid_n=96, n_atoms=48),
    "mri-fhd": dict(n_samples=4096, n_voxels=64),
    # Q must span several 256KB blocks for the rolling-vs-lazy read-back
    # contrast to exist, so the voxel count stays at its default.
    "mri-q": dict(n_samples=48, n_voxels=65536),
    "pns": dict(n_places=(1 * MB) // 4, iterations=48, sample_interval=8),
    "rpes": dict(n_integrals=64 * 1024, n_roots=16),
    "sad": dict(width=128, height=128, search=4),
    "tpacf": dict(n_points=131072),
}

#: Paper-scale workload parameters: the full Parboil input sizes the
#: evaluation ran (10-100x the quick presets, pinned explicitly so the
#: spec params — and therefore the result-cache keys — name the scale).
#: Input generation is memoized process-wide, so repeated paper-scale
#: runs regenerate nothing.
PAPER_PARAMS = {
    "cp": dict(grid_n=256, n_atoms=512),
    "mri-fhd": dict(n_samples=32768, n_voxels=256),
    "mri-q": dict(n_samples=256, n_voxels=65536),
    "pns": dict(n_places=(8 * MB) // 4, iterations=160, sample_interval=16),
    "rpes": dict(n_integrals=512 * 1024, n_roots=64),
    "sad": dict(width=512, height=512, search=8),
    "tpacf": dict(n_points=524288),
}

#: Parameter presets by scale name (``--scale`` / ``REPRO_SCALE``).
SCALE_PARAMS = {"quick": QUICK_PARAMS, "paper": PAPER_PARAMS}


def active_scale():
    """The scale preset forced via ``REPRO_SCALE``, or None.

    The experiment spec hooks only thread a ``quick`` flag; the scale
    override rides in process-wide (set by ``--scale``) so every hook
    picks up the matching parameter preset without signature churn.
    """
    scale = os.environ.get("REPRO_SCALE", "").strip().lower()
    if not scale:
        return None
    if scale not in SCALE_PARAMS:
        raise KeyError(
            f"unknown REPRO_SCALE {scale!r}; pick from {sorted(SCALE_PARAMS)}"
        )
    return scale


def params_for(name, quick=False):
    """The parameter preset for one Parboil workload at the active scale."""
    scale = active_scale()
    if scale is not None:
        return SCALE_PARAMS[scale].get(name)
    return QUICK_PARAMS[name] if quick else None

#: The protocol order of Figures 7 and 8.
PROTOCOL_ORDER = ("batch", "lazy", "rolling")

#: In-memory outcomes; same spec -> the identical outcome object.
_memory = {}

#: Persistent cache: the sentinel means "build the default lazily".
_DEFAULT = object()
_persistent = _DEFAULT


def make_workload(name, quick=False):
    cls = PARBOIL[name]
    params = params_for(name, quick=quick)
    return cls(**params) if params else cls()


def parboil_spec(name, mode, protocol="rolling", quick=False, layer="runtime",
                 protocol_options=None):
    """The :class:`RunSpec` for one Parboil configuration."""
    return RunSpec.make(
        workload=name,
        params=params_for(name, quick=quick),
        mode=mode,
        protocol=protocol,
        layer=layer,
        protocol_options=protocol_options,
    )


def persistent_cache():
    """The active persistent cache, or None when caching is disabled."""
    global _persistent
    if _persistent is _DEFAULT:
        if os.environ.get("REPRO_RESULT_CACHE", "1") == "0":
            _persistent = None
        else:
            from repro.experiments.cache import ResultCache

            _persistent = ResultCache()
    return _persistent


def set_persistent_cache(cache):
    """Install ``cache`` (a ResultCache or None to disable) process-wide."""
    global _persistent
    _persistent = cache


@contextlib.contextmanager
def using_cache(cache):
    """Temporarily swap the persistent cache (None disables)."""
    global _persistent
    previous = _persistent
    _persistent = cache
    try:
        yield cache
    finally:
        _persistent = previous


def peek(spec):
    """The outcome for ``spec`` if either cache layer holds it, else None.

    A persistent hit is promoted into the in-memory layer, so subsequent
    :func:`run_spec` calls return the identical object.
    """
    outcome = _memory.get(spec)
    if outcome is not None:
        return outcome
    cache = persistent_cache()
    if cache is None:
        return None
    outcome = cache.get(spec)
    if outcome is not None:
        _memory[spec] = outcome
    return outcome


def store(spec, outcome):
    """Deposit an outcome into both cache layers (executor merge path)."""
    _memory[spec] = outcome
    cache = persistent_cache()
    if cache is not None:
        cache.put(spec, outcome)
    return outcome


def run_spec(spec):
    """Run (or recall) one spec; returns its SpecOutcome."""
    outcome = peek(spec)
    if outcome is None:
        outcome = store(spec, spec.execute())
    return outcome


def run_parboil(name, mode, protocol="rolling", quick=False, layer="runtime",
                protocol_options=None):
    """Run (and cache) one Parboil configuration."""
    return run_spec(parboil_spec(
        name, mode, protocol=protocol, quick=quick, layer=layer,
        protocol_options=protocol_options,
    ))


def clear_cache():
    """Drop the in-memory layer (the persistent cache is untouched)."""
    _memory.clear()
