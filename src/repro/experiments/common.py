"""Shared plumbing for the experiment modules.

Figures 7, 8 and 10 are different projections of the same Parboil runs;
this module runs each (benchmark, mode, protocol) combination once per
process and caches the :class:`~repro.workloads.base.WorkloadResult`.
"""

from repro.util.units import KB, MB
from repro.workloads.parboil import PARBOIL

#: Shrunk workload parameters for test runs (shape-preserving).
QUICK_PARAMS = {
    "cp": dict(grid_n=96, n_atoms=48),
    "mri-fhd": dict(n_samples=4096, n_voxels=64),
    # Q must span several 256KB blocks for the rolling-vs-lazy read-back
    # contrast to exist, so the voxel count stays at its default.
    "mri-q": dict(n_samples=48, n_voxels=65536),
    "pns": dict(n_places=(1 * MB) // 4, iterations=48, sample_interval=8),
    "rpes": dict(n_integrals=64 * 1024, n_roots=16),
    "sad": dict(width=128, height=128, search=4),
    "tpacf": dict(n_points=131072),
}

#: The protocol order of Figures 7 and 8.
PROTOCOL_ORDER = ("batch", "lazy", "rolling")

_cache = {}


def make_workload(name, quick=False):
    cls = PARBOIL[name]
    if quick:
        return cls(**QUICK_PARAMS[name])
    return cls()


def run_parboil(name, mode, protocol="rolling", quick=False, layer="runtime",
                protocol_options=None):
    """Run (and cache) one Parboil configuration."""
    options_key = tuple(sorted((protocol_options or {}).items()))
    key = (name, mode, protocol if mode == "gmac" else "-", quick, layer,
           options_key)
    if key not in _cache:
        workload = make_workload(name, quick=quick)
        gmac_options = {"layer": layer}
        if protocol_options:
            gmac_options["protocol_options"] = dict(protocol_options)
        _cache[key] = workload.execute(
            mode=mode,
            protocol=protocol,
            gmac_options=gmac_options if mode == "gmac" else None,
        )
    return _cache[key]


def clear_cache():
    _cache.clear()
