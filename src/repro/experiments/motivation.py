"""Section 2.2 motivation — where do main-data-structure accesses happen?

"Execution traces show that about 99% of read and write accesses to the
main data structures in the NASA Parallel Benchmarks occur inside
computationally intensive kernels."
"""

from repro.workloads.npb import NPB_KERNELS, trace_summary
from repro.experiments.result import ExperimentResult

EXPERIMENT_ID = "motivation"
TITLE = "fraction of main-data accesses inside computational kernels"
PAPER_CLAIM = "about 99% of accesses to main data structures occur in kernels"


def run(quick=False):
    instructions = 50_000 if quick else 400_000
    rows = []
    for name in sorted(NPB_KERNELS):
        summary = trace_summary(name, instructions=instructions, seed=3)
        rows.append(
            [
                name,
                summary.instructions,
                summary.memory_accesses,
                round(summary.kernel_access_fraction, 4),
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["benchmark", "instructions", "main-data accesses",
                 "kernel fraction"],
        rows=rows,
    )
