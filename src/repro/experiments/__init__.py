"""The experiment harness: one module per paper table/figure.

Each module exposes ``run(quick=False) -> ExperimentResult``; the registry
maps experiment ids (``fig2`` ... ``fig12``, ``tab2``, ``porting``,
``motivation``, ``ablations``) to modules, and
``python -m repro.experiments <id>`` prints the regenerated table.
``quick=True`` shrinks workload sizes for test suites; the shapes (who
wins, by what factor) are preserved.
"""

from repro.experiments.result import ExperimentResult
from repro.experiments.registry import REGISTRY, run_experiment

__all__ = ["ExperimentResult", "REGISTRY", "run_experiment"]
