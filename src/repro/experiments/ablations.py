"""Ablations for the design choices the paper discusses but does not plot.

* **Kernel-output annotation** (Section 4.3): all protocols must fetch
  back objects the kernel never wrote, unless the call is annotated with
  the objects it writes (the interprocedural-pointer-analysis hook).
* **Integrated system** (Section 3.1): the same ADSM program on a
  shared-physical-memory machine runs with zero copies — the
  architecture-independence benefit.
* **adsmSafeAlloc** (Section 4.2): when the fixed mapping collides, the
  normal allocation fails and the safe variant (with explicit adsmSafe()
  translation) still works.
* **Adaptive rolling size** (Section 4.3): the adaptive policy (2 blocks
  per allocation) avoids the Figure 12 pathology a fixed size of 1 hits.
* **Transfer/compute overlap** (Section 2.2's second motivation):
  rolling-update matches hand-tuned double buffering with no extra code.
* **Hardware peer DMA** (Section 7): I/O straight between disk and
  accelerator memory speeds up the I/O-heavy MRI benchmarks.
* **Accelerator virtual memory** (Section 4.2): adsmAlloc negotiates a
  common virtual range, so multi-accelerator systems never collide.
"""

import numpy as np

from repro.util.errors import GmacError
from repro.util.units import KB
from repro.hw.machine import reference_system
from repro.cuda.kernels import Kernel
from repro.workloads.base import Application
from repro.experiments.common import run_spec
from repro.experiments.spec import RunSpec
from repro.experiments.result import ExperimentResult

EXPERIMENT_ID = "ablations"
TITLE = (
    "design-choice ablations (annotation, integrated, safe-alloc, "
    "adaptive, overlap, peer DMA, accelerator virtual memory)"
)
PAPER_CLAIM = (
    "annotations avoid read-backs of unwritten objects; ADSM programs run "
    "unchanged on shared-memory systems; safe-alloc survives address "
    "collisions; the adaptive rolling size avoids thrashing; rolling-update "
    "matches hand-tuned double buffering; peer DMA speeds up I/O-heavy "
    "benchmarks; accelerator virtual memory removes collisions entirely"
)


def _copy_fn(gpu, src, dst, n):
    gpu.view(dst, "f4", n)[:] = gpu.view(src, "f4", n)


COPY_KERNEL = Kernel(
    "copy",
    _copy_fn,
    cost=lambda src, dst, n: (n, 8 * n),
    writes=("dst",),
)


def _annotation_rows(quick):
    """Fetch-back volume with and without the `writes` annotation."""
    n = 65536 if quick else 262144
    rows = []
    for annotated in (False, True):
        machine = reference_system()
        app = Application(machine)
        gmac = app.gmac(protocol="rolling", layer="driver")
        src = gmac.alloc(4 * n, name="src")
        dst = gmac.alloc(4 * n, name="dst")
        values = np.arange(n, dtype=np.float32)
        src.write_array(values)
        writes = [dst] if annotated else None
        gmac.call(COPY_KERNEL, writes=writes, src=src, dst=dst, n=n)
        gmac.sync()
        before = gmac.bytes_to_host
        # The CPU consumes BOTH objects after return; only `dst` was
        # written by the kernel.
        ok = bool(
            np.array_equal(src.read_array("f4", n), values)
            and np.array_equal(dst.read_array("f4", n), values)
        )
        rows.append(
            [
                "annotation",
                "writes=[dst]" if annotated else "unannotated",
                f"fetched {gmac.bytes_to_host - before} bytes after return",
                "yes" if ok else "NO",
            ]
        )
    return rows


def _integrated_specs(quick):
    elements = 65536 if quick else 524288
    return [
        RunSpec.make(workload="vecadd", params=dict(elements=elements),
                     protocol="rolling", layer="driver", machine=kind)
        for kind in ("reference", "integrated")
    ]


def _integrated_rows(quick):
    """The same vecadd source on discrete and integrated machines."""
    labels = ("discrete (PCIe)", "integrated (shared memory)")
    rows = []
    for label, spec in zip(labels, _integrated_specs(quick)):
        result = run_spec(spec)
        moved = sum(result.link_bytes_moved.values())
        rows.append(
            [
                "integrated",
                label,
                f"{moved} bytes over the link, {result.elapsed * 1e3:.2f} ms",
                "yes" if result.verified else "NO",
            ]
        )
    return rows


def _safe_alloc_rows():
    """Force the Section 4.2 address collision and recover via safe-alloc."""
    machine = reference_system()
    app = Application(machine)
    gmac = app.gmac(protocol="rolling", layer="driver")
    # Occupy the host range the next cudaMalloc will return, simulating a
    # second accelerator whose allocations overlap (multi-GPU hazard).
    probe = gmac.alloc(4096, name="probe")
    collision_base = int(probe) + 2 * 4096
    app.process.address_space.mmap(16 * 4096, fixed_address=collision_base)
    try:
        gmac.alloc(8 * 4096, name="doomed")
        normal = "unexpectedly succeeded"
        ok = False
    except GmacError:
        normal = "collision detected, adsmAlloc refused"
        ok = True
    safe = gmac.safe_alloc(8 * 4096, name="recovered")
    device_addr = gmac.safe(safe)
    safe.write_array(np.full(16, 7, dtype=np.int32))
    translated_ok = device_addr != int(safe)
    return [
        ["safe-alloc", "adsmAlloc under collision", normal, "yes" if ok else "NO"],
        [
            "safe-alloc",
            "adsmSafeAlloc + adsmSafe",
            f"host {int(safe):#x} -> device {device_addr:#x}",
            "yes" if translated_ok else "NO",
        ],
    ]


def _overlap_specs(quick):
    # The vectors must span enough 256KB blocks for overlap to matter.
    elements = 512 * 1024 if quick else 1024 * 1024
    params = dict(elements=elements)
    return [
        RunSpec.make(workload="vecadd", params=params, mode="cuda"),
        RunSpec.make(workload="vecadd", params=params, mode="cuda-db"),
        RunSpec.make(workload="vecadd", params=params, protocol="rolling",
                     protocol_options={"block_size": 256 * KB}),
    ]


def _overlap_rows(quick):
    """Section 2.2's second motivation: automatic transfer/compute overlap.

    Hand-tuned double buffering (staging buffers, async copies, explicit
    synchronization) against plain CUDA and against GMAC rolling-update,
    which gets the same overlap with zero extra application code.
    """
    rows = []
    times = {}
    for spec in _overlap_specs(quick):
        mode = spec.mode
        result = run_spec(spec)
        times[mode] = result.elapsed
        label = {
            "cuda": "CUDA, synchronous copies",
            "cuda-db": "CUDA, hand-tuned double buffering",
            "gmac": "GMAC rolling-update (no extra code)",
        }[mode]
        rows.append(
            [
                "overlap",
                label,
                f"{result.elapsed * 1e3:.2f} ms",
                "yes" if result.verified else "NO",
            ]
        )
    # The claim itself: GMAC matches the hand-tuned overlap and both beat
    # the synchronous baseline.
    claim_holds = (
        times["gmac"] <= times["cuda-db"] * 1.1
        and times["cuda-db"] < times["cuda"]
    )
    rows.append(
        [
            "overlap",
            "GMAC matches double buffering",
            f"gmac/db ratio {times['gmac'] / times['cuda-db']:.3f}",
            "yes" if claim_holds else "NO",
        ]
    )
    return rows


def _adaptive_specs(quick):
    n_points = 65536 if quick else 262144
    # At 256KB blocks the adaptive window (2 allocations x 2 = 4 blocks =
    # 1MB) covers tpacf's initialisation tile; a fixed size of 1 does not.
    return [
        RunSpec.make(workload="tpacf", params=dict(n_points=n_points),
                     protocol="rolling", layer="driver",
                     protocol_options=options)
        for options in (
            {"block_size": 256 * KB},
            {"block_size": 256 * KB, "rolling_size": 1},
        )
    ]


def _adaptive_rows(quick):
    """Adaptive rolling size vs a fixed size of 1 on tpacf."""
    labels = ("adaptive (+2/alloc)", "fixed 1")
    rows = []
    for label, spec in zip(labels, _adaptive_specs(quick)):
        result = run_spec(spec)
        rows.append(
            [
                "adaptive-rolling",
                label,
                f"{result.elapsed * 1e3:.2f} ms, "
                f"{result.bytes_to_accelerator >> 20} MB to accelerator",
                "yes" if result.verified else "NO",
            ]
        )
    return rows


def _peer_dma_specs(quick):
    sizes = dict(n_samples=8192, n_voxels=64) if quick else None
    return [
        RunSpec.make(workload="mri-fhd", params=sizes, protocol="rolling",
                     layer="driver", peer_dma=peer_dma)
        for peer_dma in (False, True)
    ]


def _peer_dma_rows(quick):
    """Section 7: "hardware supported peer DMA can increase the performance
    of certain applications" — measured on mri-fhd, the paper's named
    beneficiary."""
    rows = []
    times = {}
    for spec in _peer_dma_specs(quick):
        peer_dma = spec.peer_dma
        result = run_spec(spec)
        times[peer_dma] = result.elapsed
        rows.append(
            [
                "peer-dma",
                "hardware peer DMA" if peer_dma else "software (bounce copy)",
                f"mri-fhd {result.elapsed * 1e3:.2f} ms, "
                f"{result.faults} faults",
                "yes" if result.verified else "NO",
            ]
        )
    rows.append(
        [
            "peer-dma",
            "speed-up",
            f"{times[False] / times[True]:.3f}x",
            "yes" if times[True] < times[False] else "NO",
        ]
    )
    return rows


def _virtual_memory_rows():
    """Section 4.2: with accelerator virtual memory, adsmAlloc never
    collides, even with multiple accelerators sharing address ranges."""
    from repro.hw.machine import Machine
    from repro.hw.specs import FERMI

    machine = Machine(gpu_spec=FERMI, gpu_count=2)
    app = Application(machine)
    first = app.gmac(protocol="rolling", layer="driver",
                     gpu=machine.gpus[0], interpose=False)
    second = app.gmac(protocol="rolling", layer="driver",
                      gpu=machine.gpus[1], interpose=False)
    a = first.alloc(1 << 20)
    try:
        b = second.alloc(1 << 20)
        observation = (
            f"two accelerators, both aliased: {int(a):#x} and {int(b):#x}"
        )
        ok = first.manager.region_at(int(a)).is_aliased and (
            second.manager.region_at(int(b)).is_aliased
        )
    except GmacError as exc:
        observation = f"unexpected collision: {exc}"
        ok = False
    return [
        ["virtual-memory", "2x Fermi-class (VM) GPUs", observation,
         "yes" if ok else "NO"],
    ]


def specs(quick=False):
    """The spec-able ablation runs (executor fan-out).

    The annotation, safe-alloc and virtual-memory ablations drive the GMAC
    API inline (custom kernels, deliberate collisions, multi-GPU machines)
    and stay inside :func:`run`.
    """
    return (
        _integrated_specs(quick)
        + _adaptive_specs(quick)
        + _overlap_specs(quick)
        + _peer_dma_specs(quick)
    )


def run(quick=False):
    rows = []
    rows.extend(_annotation_rows(quick))
    rows.extend(_integrated_rows(quick))
    rows.extend(_safe_alloc_rows())
    rows.extend(_adaptive_rows(quick))
    rows.extend(_overlap_rows(quick))
    rows.extend(_peer_dma_rows(quick))
    rows.extend(_virtual_memory_rows())
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["ablation", "configuration", "observation", "ok"],
        rows=rows,
    )
