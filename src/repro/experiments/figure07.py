"""Figure 7 — slow-down of GMAC protocols vs hand-tuned CUDA (Parboil).

"The GMAC implementation using the batch-update coherence protocol always
performs worse than other versions, producing a slow-down of up to 65.18X
in pns and 18.61X in rpes.  GMAC implementations using lazy-update and
rolling-update achieve performance equal to the original CUDA
implementation."
"""

from repro.experiments.common import run_parboil, parboil_spec, PROTOCOL_ORDER
from repro.experiments.result import ExperimentResult
from repro.workloads.parboil import PARBOIL

EXPERIMENT_ID = "fig7"
TITLE = "GMAC slow-down vs CUDA, per Parboil benchmark and protocol"
PAPER_CLAIM = (
    "batch always loses (65.18x pns, 18.61x rpes); lazy and rolling match "
    "CUDA (~1.0x)"
)


def specs(quick=False):
    """The independent runs this figure projects (executor fan-out)."""
    out = []
    for name in PARBOIL:
        out.append(parboil_spec(name, "cuda", quick=quick))
        for protocol in PROTOCOL_ORDER:
            out.append(parboil_spec(name, "gmac", protocol=protocol,
                                    quick=quick))
    return out


def run(quick=False):
    rows = []
    for name in PARBOIL:
        cuda = run_parboil(name, "cuda", quick=quick)
        row = [name, round(cuda.elapsed * 1e3, 3)]
        verified = cuda.verified
        for protocol in PROTOCOL_ORDER:
            result = run_parboil(name, "gmac", protocol=protocol, quick=quick)
            verified = verified and result.verified
            row.append(round(result.elapsed / cuda.elapsed, 3))
        row.append("yes" if verified else "NO")
        rows.append(row)
    headers = ["benchmark", "cuda ms"] + [
        f"{protocol} slow-down" for protocol in PROTOCOL_ORDER
    ] + ["outputs verified"]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=headers,
        rows=rows,
        notes=[
            "slow-down = GMAC time / CUDA time on identical virtual machines",
            "runtime abstraction layer (both sides pay CUDA initialisation), "
            "as in the paper's CUDA comparison",
        ],
    )
