"""Figure 2 — bandwidth required by NPB kernels vs interconnect capacity.

"Estimated bandwidth requirements for computationally intensive kernels of
bt, ep, lu, mg, ua benchmarks, assuming a 800MHz clock frequency ... if all
data accesses are done through a PCIe bus, the maximum achievable value of
IPC is 50 for bt and 5 for ua."
"""

from repro.util.units import GB
from repro.hw.specs import PCIE_2_0_X16, QPI, HYPERTRANSPORT, GTX295_MEMORY
from repro.workloads.npb import NPB_KERNELS, trace_summary
from repro.workloads.npb_kernel import ipc_ceiling
from repro.experiments.result import ExperimentResult

EXPERIMENT_ID = "fig2"
TITLE = "NPB kernel bandwidth requirements vs interconnect capacity"
PAPER_CLAIM = (
    "PCIe caps bt at IPC~50 and ua at IPC~5; on-board GPU memory sustains "
    "far higher IPC than any CPU-accelerator interconnect"
)

IPC_SWEEP = (1, 2, 5, 10, 20, 50, 100)

LINKS = (PCIE_2_0_X16, QPI, HYPERTRANSPORT, GTX295_MEMORY)


def run(quick=False):
    instructions = 50_000 if quick else 400_000
    rows = []
    for name in ("bt", "ep", "lu", "mg", "ua"):
        spec = NPB_KERNELS[name]
        summary = trace_summary(name, instructions=instructions, seed=11)
        row = [name, round(summary.bytes_per_instruction, 4)]
        row.extend(
            round(spec.required_bandwidth(ipc) / GB, 3) for ipc in IPC_SWEEP
        )
        row.extend(
            round(spec.max_ipc(link.h2d_bytes_per_s), 1) for link in LINKS
        )
        # The simulated companion: run the kernel's instruction stream
        # through the actual machine timelines and read the ceiling off
        # the makespan (see workloads/npb_kernel.py).
        row.append(round(ipc_ceiling(name, "pcie"), 1))
        row.append(round(ipc_ceiling(name, "device"), 1))
        rows.append(row)
    headers = (
        ["benchmark", "bytes/instr"]
        + [f"GB/s@IPC{ipc}" for ipc in IPC_SWEEP]
        + [f"maxIPC:{link.name}" for link in LINKS]
        + ["simIPC:PCIe", "simIPC:on-board"]
    )
    notes = [
        "bytes/instr measured from synthetic traces calibrated to the "
        "paper's PCIe break-points (bt: IPC 50, ua: IPC 5)",
        "capacity lines (GB/s): "
        + ", ".join(f"{link.name}={link.h2d_bytes_per_s / GB:.1f}" for link in LINKS),
        "simIPC columns: achieved IPC of a simulated streaming kernel "
        "(target 100) with data over PCIe vs in accelerator memory",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=headers,
        rows=rows,
        notes=notes,
    )
