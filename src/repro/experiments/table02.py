"""Table 2 — the Parboil benchmark suite, as implemented here."""

from repro.experiments.result import ExperimentResult
from repro.workloads.parboil import PARBOIL

EXPERIMENT_ID = "tab2"
TITLE = "Parboil benchmark descriptions and default scaled sizes"
PAPER_CLAIM = "seven Parboil benchmarks: cp, mri-fhd, mri-q, pns, rpes, sad, tpacf"


def run(quick=False):
    rows = []
    for name, cls in PARBOIL.items():
        workload = cls()
        footprint = 0
        for attribute in dir(workload):
            if attribute.endswith("_bytes") and not attribute.startswith("_"):
                value = getattr(workload, attribute)
                if isinstance(value, int):
                    footprint += value
        rows.append([name, cls.__name__, workload.description,
                     round(footprint / (1024 * 1024), 2)])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["benchmark", "class", "description", "shared MB (approx)"],
        rows=rows,
    )
