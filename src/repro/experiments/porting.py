"""Section 5 porting-effort claim, measured on our own dual variants.

"The porting process only involved removing code that performed explicit
data transfers and handled double allocation of data structures.  The
porting process did not involve adding any source code lines to any of the
benchmarks.  After being ported to GMAC, the total number of lines of code
decreased in all benchmarks."
"""

import inspect

from repro.experiments.result import ExperimentResult
from repro.workloads.parboil import PARBOIL
from repro.workloads.stencil3d import Stencil3D

EXPERIMENT_ID = "porting"
TITLE = "lines of code: CUDA variant vs GMAC variant"
PAPER_CLAIM = "porting to GMAC only removes lines; every benchmark shrinks"


def _loc(function):
    """Logical source lines of a variant (no blanks, no comments)."""
    source = inspect.getsource(function)
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


def run(quick=False):
    rows = []
    # The paper's claim covers the seven Parboil benchmarks; 3D-Stencil is
    # included too.  The vecadd micro-benchmark is excluded because its
    # GMAC variant embeds Figure 11 instrumentation, not application code.
    workloads = list(PARBOIL.values()) + [Stencil3D]
    for cls in workloads:
        cuda_loc = _loc(cls.run_cuda)
        gmac_loc = _loc(cls.run_gmac)
        rows.append(
            [
                cls.name,
                cuda_loc,
                gmac_loc,
                cuda_loc - gmac_loc,
                "yes" if gmac_loc < cuda_loc else "NO",
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["benchmark", "cuda LoC", "gmac LoC", "removed", "decreased"],
        rows=rows,
        notes=[
            "LoC counted over the runnable variant bodies (logical lines, "
            "comments and blanks excluded)",
        ],
    )
