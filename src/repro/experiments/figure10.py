"""Figure 10 — execution-time break-down under rolling-update.

"Most execution time is spent on computations on the CPU or at the GPU.
I/O operations ... and data transfers are the next-most time consuming
operations ... the overhead due to signal handling ... is negligible,
always below 2% of the total execution time.  Some benchmarks (mri-fhd and
mri-q) have high levels of I/O read activities."
"""

from repro.sim.tracing import Category
from repro.experiments.common import run_parboil, parboil_spec
from repro.experiments.result import ExperimentResult
from repro.workloads.parboil import PARBOIL

EXPERIMENT_ID = "fig10"
TITLE = "per-category share of execution time (rolling-update, driver layer)"
PAPER_CLAIM = (
    "CPU+GPU dominate; I/O and copies come next; signal handling is always "
    "below 2%; mri-fhd and mri-q are I/O-read heavy"
)

#: Figure 10's legend order.
COLUMNS = [
    Category.COPY,
    Category.MALLOC,
    Category.FREE,
    Category.LAUNCH,
    Category.SYNC,
    Category.SIGNAL,
    Category.CUDA_MALLOC,
    Category.CUDA_FREE,
    Category.CUDA_LAUNCH,
    Category.GPU,
    Category.IO_READ,
    Category.IO_WRITE,
    Category.CPU,
]


def specs(quick=False):
    """Rolling-update driver-layer runs, one per benchmark."""
    return [
        parboil_spec(name, "gmac", protocol="rolling", quick=quick,
                     layer="driver")
        for name in PARBOIL
    ]


def run(quick=False):
    rows = []
    for name in PARBOIL:
        result = run_parboil(
            name, "gmac", protocol="rolling", quick=quick, layer="driver"
        )
        total = sum(result.breakdown.values())
        row = [name]
        for category in COLUMNS:
            share = result.breakdown[str(category)] / total if total else 0.0
            row.append(round(100.0 * share, 2))
        rows.append(row)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["benchmark"] + [f"{category}%" for category in COLUMNS],
        rows=rows,
        notes=["driver abstraction layer discards CUDA initialisation, "
               "as in the paper's break-down runs"],
    )
